"""Row-granularity lock manager: strict two-phase locking (DESIGN.md §10).

Transactions take shared/exclusive locks on rows (any hashable resource
key works; the convention is ``(fileid, pageno, slot)``) and hold them
until commit or abort — strict 2PL, so committed histories are
serializable and cascading aborts cannot happen.  Waiting is cooperative:
:meth:`LockManager.acquire` never blocks the Python thread, it queues the
request and reports "you must wait"; the interleaved transaction
scheduler parks the task until the grant (or until the waiter is chosen
as a deadlock victim).

Deadlocks are detected eagerly at block time by a depth-first cycle
search over the waits-for graph (waiter → every transaction it waits
behind).  Victim selection is deterministic — the *youngest* transaction
(highest txid) in the cycle — which is what makes contended schedules
replayable: same seed, same victims, same abort sequence.

Everything here is in-memory bookkeeping: acquiring, waiting and
releasing charge no simulated I/O, so a schedule that never conflicts is
bit-identical to the same operations run without the lock manager.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.db.errors import ReproError

LockKey = tuple
"""Resource key; row locks use ``(fileid, pageno, slot)``."""


class LockError(ReproError):
    """Lock-protocol misuse (releasing a lock that is not held, ...)."""


class DeadlockError(ReproError):
    """The requesting transaction was chosen as the deadlock victim.

    Raised out of :meth:`LockManager.acquire` (when the requester itself
    is the victim) or thrown into a parked task by the scheduler (when a
    waiter is victimised from the outside).  The handler must roll the
    transaction back — its locks are released by the abort.
    """

    def __init__(self, victim: int, cycle: tuple[int, ...]) -> None:
        super().__init__(
            f"deadlock: transaction {victim} victimised "
            f"(cycle {' -> '.join(map(str, cycle))})"
        )
        self.victim = victim
        self.cycle = cycle


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class LockRequest:
    """One entry in a resource's queue: a holder or a waiter."""

    txid: int
    mode: LockMode
    granted: bool = False
    upgrade: bool = False
    """An upgrade (S held, X wanted) waits at the front of the queue."""


@dataclass
class LockStats:
    """Counters the harness reports next to the LOG/write-buffer stats."""

    acquisitions: int = 0
    waits: int = 0
    upgrades: int = 0
    deadlocks: int = 0
    victims: int = 0


class LockManager:
    """Per-resource FIFO lock queues with deadlock detection."""

    def __init__(self) -> None:
        self._queues: dict[LockKey, list[LockRequest]] = {}
        self._held: dict[int, set[LockKey]] = {}
        self._waiting: dict[int, LockKey] = {}
        self._victims: set[int] = set()
        self.stats = LockStats()
        self.observer = None
        """Optional :class:`~repro.obs.Observer`; mirrors wait/deadlock
        counts into the metrics registry (purely passive)."""

    # -------------------------------------------------------------- acquire

    def acquire(self, txid: int, key: LockKey, mode: LockMode) -> bool:
        """Try to take ``key`` in ``mode`` for ``txid``.

        Returns True when the lock is granted (immediately or because an
        earlier wait has since been granted).  Returns False when the
        request was queued and the caller must park until
        :meth:`is_waiting` turns false.  Raises :class:`DeadlockError`
        when queuing the request closes a waits-for cycle and the
        requester itself is the deterministic victim.
        """
        queue = self._queues.setdefault(key, [])
        own = next((r for r in queue if r.txid == txid), None)
        if own is not None and own.granted:
            if own.mode is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return True  # re-entrant at sufficient strength
            return self._request_upgrade(txid, key, queue, own)
        if own is not None:
            # Still queued from an earlier acquire; granted yet?
            return own.granted
        request = LockRequest(txid=txid, mode=mode)
        queue.append(request)
        self._grant(key)
        if request.granted:
            return True
        self._begin_wait(txid, key)
        return False

    def _request_upgrade(
        self, txid: int, key: LockKey, queue: list[LockRequest], own: LockRequest
    ) -> bool:
        others = [r for r in queue if r.granted and r.txid != txid]
        if not others:
            own.mode = LockMode.EXCLUSIVE
            self.stats.upgrades += 1
            return True
        # Park an upgrade request ahead of ordinary waiters: the holder
        # blocks everyone behind it anyway, and upgrades are deadlock
        # bait if they queue at the tail.
        first_wait = next(
            (i for i, r in enumerate(queue) if not r.granted), len(queue)
        )
        queue.insert(
            first_wait,
            LockRequest(txid=txid, mode=LockMode.EXCLUSIVE, upgrade=True),
        )
        self._begin_wait(txid, key)
        return False

    def _begin_wait(self, txid: int, key: LockKey) -> None:
        self._waiting[txid] = key
        self.stats.waits += 1
        obs = self.observer
        if obs is not None and not obs.enabled:
            obs = None
        if obs is not None:
            obs.on_lock_wait()
        cycle = self._find_cycle(txid)
        if cycle is not None:
            self.stats.deadlocks += 1
            if obs is not None:
                obs.on_deadlock()
            victim = max(cycle)  # youngest transaction, deterministically
            self.stats.victims += 1
            self.cancel_wait(victim)
            if victim == txid:
                raise DeadlockError(victim, cycle)
            self._victims.add(victim)

    # ---------------------------------------------------------------- grant

    def _grant(self, key: LockKey) -> list[int]:
        """FIFO re-grant: walk the queue granting while compatible.

        An upgrade entry is grantable once its transaction's shared lock
        is the only other grant.  Returns the txids granted by this pass
        (their wait, if any, is over).
        """
        queue = self._queues.get(key)
        if not queue:
            return []
        newly: list[int] = []

        def book(txid: int) -> None:
            newly.append(txid)
            self._held.setdefault(txid, set()).add(key)
            if self._waiting.get(txid) == key:
                del self._waiting[txid]

        for request in queue:
            if request.granted:
                continue
            holders = [
                r for r in queue if r.granted and r.txid != request.txid
            ]
            if request.upgrade:
                if holders:
                    break
                # Fold the upgrade into the original shared entry.
                own = next(
                    r for r in queue if r.txid == request.txid and r.granted
                )
                own.mode = LockMode.EXCLUSIVE
                queue.remove(request)
                self.stats.upgrades += 1
                book(request.txid)
                return newly + self._grant(key)
            if all(request.mode.compatible(r.mode) for r in holders):
                request.granted = True
                self.stats.acquisitions += 1
                book(request.txid)
                continue
            break  # FIFO: nobody overtakes the first blocked waiter
        return newly

    # -------------------------------------------------------------- release

    def release_all(self, txid: int) -> list[int]:
        """Drop every lock and queued request of ``txid`` (commit/abort).

        Returns the transactions granted by the release, so a scheduler
        can credit their blocked time and mark them runnable.
        """
        keys = set(self._held.pop(txid, ()))
        waited = self._waiting.pop(txid, None)
        if waited is not None:
            keys.add(waited)
        self._victims.discard(txid)
        granted: list[int] = []
        for key in keys:
            queue = self._queues.get(key)
            if not queue:
                continue
            queue[:] = [r for r in queue if r.txid != txid]
            if queue:
                granted.extend(self._grant(key))
            else:
                del self._queues[key]
        return granted

    def cancel_wait(self, txid: int) -> None:
        """Remove a parked request (victim path); re-grants the queue."""
        key = self._waiting.pop(txid, None)
        if key is None:
            return
        queue = self._queues.get(key, [])
        queue[:] = [r for r in queue if r.txid != txid or r.granted]
        if queue:
            self._grant(key)
        else:
            self._queues.pop(key, None)

    # ------------------------------------------------------------ inspection

    def holds(self, txid: int, key: LockKey, mode: LockMode) -> bool:
        return any(
            r.txid == txid
            and r.granted
            and (r.mode is LockMode.EXCLUSIVE or mode is LockMode.SHARED)
            for r in self._queues.get(key, ())
        )

    def is_waiting(self, txid: int) -> bool:
        return txid in self._waiting

    def waiting_on(self, txid: int) -> LockKey | None:
        return self._waiting.get(txid)

    def is_victim(self, txid: int) -> bool:
        return txid in self._victims

    def take_victim(self, txid: int) -> bool:
        """True once if ``txid`` was victimised from the outside."""
        if txid in self._victims:
            self._victims.remove(txid)
            return True
        return False

    def held_keys(self, txid: int) -> frozenset:
        return frozenset(self._held.get(txid, ()))

    def reset(self) -> None:
        """Forget everything (crash simulation: volatile state is gone)."""
        self._queues.clear()
        self._held.clear()
        self._waiting.clear()
        self._victims.clear()

    # ------------------------------------------------------------- deadlocks

    def _blockers(self, txid: int) -> list[int]:
        """Transactions ``txid`` waits behind: the granted holders of the
        awaited resource plus earlier (FIFO-ahead) waiters on it."""
        key = self._waiting.get(txid)
        if key is None:
            return []
        blockers: list[int] = []
        for request in self._queues.get(key, ()):
            if request.txid == txid and not request.granted:
                break
            if request.txid != txid:
                blockers.append(request.txid)
        return blockers

    def _find_cycle(self, start: int) -> tuple[int, ...] | None:
        """DFS over the waits-for graph; a path back to ``start`` is a
        deadlock.  Deterministic: edges follow queue order."""
        path: list[int] = [start]
        on_path = {start}
        seen: set[int] = set()

        def visit(txid: int) -> tuple[int, ...] | None:
            for blocker in self._blockers(txid):
                if blocker == start:
                    return tuple(path)
                if blocker in on_path or blocker in seen:
                    continue
                path.append(blocker)
                on_path.add(blocker)
                found = visit(blocker)
                if found is not None:
                    return found
                on_path.remove(blocker)
                path.pop()
                seen.add(blocker)
            return None

        return visit(start)

"""MVCC snapshot reads: begin-timestamp visibility over versioned rows.

The heap keeps exactly one physical row per slot (the newest version —
possibly uncommitted); this module keeps the *history*: a version chain
per row id holding the committed row images that slot content superseded,
each stamped with the commit timestamp at which it became current.  A
:class:`Snapshot` taken at timestamp ``ts`` sees, for every row, the
newest version committed at or before ``ts`` — so analytical scans
(Q1/Q6) read a transaction-consistent image of the database and never
block behind, or dirty-read, concurrent point-update writers.

Timestamps come from a logical commit clock (one tick per commit), not
the simulated I/O clock, so visibility is exact and deterministic.  All
bookkeeping is in-memory and charges no simulated I/O: a snapshot scan
issues exactly the page requests an ordinary scan would, and a database
that never takes snapshots is bit-identical to one without this module.

Version chains are volatile — a crash drops them (the durable state is
the latest committed image, which recovery rebuilds), and commit-time
garbage collection prunes every version no active snapshot can see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.errors import ReproError

VersionKey = tuple[int, int, int]
"""(fileid, pageno, slot) — one logical row."""


class WriteConflictError(ReproError):
    """Two live transactions wrote one row (the lock manager must make
    this impossible; raising loudly beats silent version-chain damage)."""


@dataclass(frozen=True)
class Snapshot:
    """A fixed point in commit order.

    Sees every version committed at or before ``ts``, plus (when ``txid``
    is set) the owning transaction's own uncommitted writes.
    """

    ts: int
    txid: int | None = None


class MVCCManager:
    """Version chains, the commit clock, and the visibility rule."""

    def __init__(self) -> None:
        self._clock = 0
        self._chains: dict[VersionKey, list[tuple[int, tuple | None]]] = {}
        """Superseded committed versions per row, oldest -> newest, as
        ``(commit_ts, row-or-None)`` (None: the version was a delete)."""
        self._writers: dict[VersionKey, int] = {}
        """Uncommitted owner of the current slot content, per row."""
        self._current_ts: dict[VersionKey, int] = {}
        """Commit timestamp of the current slot content (absent = 0: as
        old as the bulk-loaded base image, visible to every snapshot)."""
        self._txn_writes: dict[int, dict[VersionKey, bool]] = {}
        """Per live transaction: written keys -> "pushed a chain entry"."""
        self._index_tombstones: dict[int, list[list]] = {}
        """Per index fileid: ``[key, rid, commit_ts, writer]`` for every
        entry removed from the (unversioned) B-tree that some snapshot
        may still need to see.  ``commit_ts`` is None while the deleting
        transaction is in flight."""
        self._txn_index_deletes: dict[int, list[tuple[int, list]]] = {}
        """Per live transaction: (fileid, tombstone) refs to settle."""
        self._tracked: dict[int, set[VersionKey]] = {}
        """fileid -> rows with live MVCC state (the scan fast path skips
        visibility resolution entirely for untracked files)."""
        self._active_snapshots: dict[int, int] = {}
        """ts -> refcount of live snapshots pinned at that timestamp."""
        self.snapshot_reads = 0
        """Rows served from a version chain (not current slot content)."""
        self.versions_created = 0
        self.versions_pruned = 0

    # ------------------------------------------------------------ snapshots

    @property
    def clock(self) -> int:
        return self._clock

    def take_snapshot(self, txid: int | None = None) -> Snapshot:
        snapshot = Snapshot(ts=self._clock, txid=txid)
        self._active_snapshots[snapshot.ts] = (
            self._active_snapshots.get(snapshot.ts, 0) + 1
        )
        return snapshot

    def release_snapshot(self, snapshot: Snapshot | None) -> None:
        if snapshot is None:
            return
        count = self._active_snapshots.get(snapshot.ts, 0)
        if count <= 1:
            self._active_snapshots.pop(snapshot.ts, None)
        else:
            self._active_snapshots[snapshot.ts] = count - 1

    def _horizon(self) -> int:
        """Versions at or before this timestamp whose successor is also
        at or before it can never be read again."""
        if not self._active_snapshots:
            return self._clock
        return min(self._active_snapshots)

    # ------------------------------------------------------------ write side

    def on_insert(self, txid: int, fileid: int, rid: tuple[int, int]) -> None:
        """A logged heap insert: fresh slot, no prior version."""
        self._register_write(txid, (fileid, *rid), old_row=None, push=False)

    def on_update(
        self, txid: int, fileid: int, rid: tuple[int, int], old_row: tuple | None
    ) -> None:
        """A logged heap update or delete: the superseded committed image
        joins the chain (first write of this row by this transaction)."""
        self._register_write(txid, (fileid, *rid), old_row=old_row, push=True)

    def _register_write(
        self, txid: int, key: VersionKey, old_row: tuple | None, push: bool
    ) -> None:
        writes = self._txn_writes.setdefault(txid, {})
        if key in writes:
            return  # rewriting its own uncommitted version: no new chain entry
        owner = self._writers.get(key)
        if owner is not None and owner != txid:
            raise WriteConflictError(
                f"row {key} written by {txid} while transaction "
                f"{owner} still owns an uncommitted version"
            )
        if push:
            self._chains.setdefault(key, []).append(
                (self._current_ts.get(key, 0), old_row)
            )
            self.versions_created += 1
        self._writers[key] = txid
        writes[key] = push
        self._tracked.setdefault(key[0], set()).add(key)

    def on_index_delete(
        self, txid: int, fileid: int, key, rid: tuple[int, int]
    ) -> None:
        """A logged B-tree entry removal.  The tree itself is unversioned
        (the entry is physically gone the moment the transaction removes
        it), so the tombstone is what lets snapshot index scans resurrect
        entries whose deletion they must not see."""
        tombstone = [key, rid, None, txid]
        self._index_tombstones.setdefault(fileid, []).append(tombstone)
        self._txn_index_deletes.setdefault(txid, []).append((fileid, tombstone))

    # ---------------------------------------------------------- commit/abort

    def on_commit(self, txid: int) -> int:
        """Tick the commit clock; the transaction's versions become the
        current committed image at the new timestamp."""
        self._clock += 1
        commit_ts = self._clock
        writes = self._txn_writes.pop(txid, {})
        horizon = self._horizon()
        for key in writes:
            self._writers.pop(key, None)
            self._current_ts[key] = commit_ts
            self._settle(key, horizon)
        for fileid, tombstone in self._txn_index_deletes.pop(txid, ()):
            tombstone[2] = commit_ts
            if commit_ts <= horizon:  # no live snapshot predates the delete
                self._drop_tombstone(fileid, tombstone)
        return commit_ts

    def on_abort(self, txid: int) -> None:
        """Undo restored the slot contents; pop the chain entries the
        transaction pushed so the history matches again."""
        writes = self._txn_writes.pop(txid, {})
        horizon = self._horizon()
        for key, pushed in writes.items():
            self._writers.pop(key, None)
            if pushed:
                chain = self._chains.get(key)
                if chain:
                    chain.pop()
                    if not chain:
                        del self._chains[key]
            self._settle(key, horizon)
        for fileid, tombstone in self._txn_index_deletes.pop(txid, ()):
            # Undo re-inserted the B-tree entry; the tombstone is moot.
            self._drop_tombstone(fileid, tombstone)

    def _drop_tombstone(self, fileid: int, tombstone: list) -> None:
        stones = self._index_tombstones.get(fileid)
        if stones is None:
            return
        try:
            stones.remove(tombstone)
        except ValueError:
            return
        if not stones:
            del self._index_tombstones[fileid]

    # ------------------------------------------------------------- read side

    def resolve(
        self, fileid: int, rid: tuple[int, int], current_row, snapshot: Snapshot
    ):
        """The visible version of one row under ``snapshot``.

        ``current_row`` is the slot content the caller already fetched
        through the buffer pool (None for a tombstone).  Returns the row
        image visible at ``snapshot.ts`` or None (deleted / not yet
        born).
        """
        key = (fileid, *rid)
        owner = self._writers.get(key)
        if owner is not None:
            if owner == snapshot.txid:
                return current_row  # own uncommitted write
        elif self._current_ts.get(key, 0) <= snapshot.ts:
            return current_row  # current version already visible
        for ts, row in reversed(self._chains.get(key, ())):
            if ts <= snapshot.ts:
                self.snapshot_reads += 1
                return row
        return None  # row did not exist at snapshot time

    def visible_page_rows(
        self, fileid: int, pageno: int, rows: list, snapshot: Snapshot
    ) -> list:
        """Visible versions of one heap page's slots, in slot order."""
        out = []
        for slot, row in enumerate(rows):
            visible = self.resolve(fileid, (pageno, slot), row, snapshot)
            if visible is not None:
                out.append(visible)
        return out

    def file_tracked(self, fileid: int) -> bool:
        """False when no row of the file has MVCC state: scans may take
        the plain ``live_row_list`` fast path."""
        return fileid in self._tracked

    def hidden_index_entries(
        self, fileid: int, lo, hi, snapshot: Snapshot
    ) -> list[tuple]:
        """Index entries in ``[lo, hi]`` removed from the tree that
        ``snapshot`` must still see: deletions committed after its
        timestamp, and uncommitted deletions of other transactions.
        Sorted by key (then rid) for merging into a range scan."""
        out = []
        for key, rid, commit_ts, writer in self._index_tombstones.get(
            fileid, ()
        ):
            if lo is not None and key < lo:
                continue
            if hi is not None and key > hi:
                continue
            if commit_ts is None:
                if writer != snapshot.txid:
                    out.append((key, rid))  # dirty delete: not yet real
            elif commit_ts > snapshot.ts:
                out.append((key, rid))
        out.sort()
        return out

    # ------------------------------------------------------------------- gc

    def _settle(self, key: VersionKey, horizon: int) -> None:
        """Prune dead versions of one row and drop its tracking once it
        is indistinguishable from plain base data.

        A chain entry is dead when its successor (next chain entry, or
        the committed current version) is also at or before the horizon:
        every live or future snapshot then resolves past it.  A row stops
        being tracked when it has no uncommitted writer, no chain, and a
        current version at or before the horizon.
        """
        chain = self._chains.get(key)
        owner = self._writers.get(key)
        if chain:
            successors = [ts for ts, _ in chain[1:]]
            if owner is None:
                successors.append(self._current_ts.get(key, 0))
            else:
                successors.append(self._clock + 1)  # uncommitted successor
            keep = [
                entry
                for entry, succ_ts in zip(chain, successors)
                if succ_ts > horizon
            ]
            self.versions_pruned += len(chain) - len(keep)
            if keep:
                self._chains[key] = keep
            else:
                del self._chains[key]
                chain = None
        if chain or owner is not None:
            return
        if self._current_ts.get(key, 0) <= horizon:
            # As old as base data for everyone who can still look.
            self._current_ts.pop(key, None)
            tracked = self._tracked.get(key[0])
            if tracked is not None:
                tracked.discard(key)
                if not tracked:
                    del self._tracked[key[0]]

    def gc(self) -> int:
        """Prune every tracked row against the active-snapshot horizon
        (called after snapshot churn; commits settle their own rows)."""
        horizon = self._horizon()
        before = self.versions_pruned
        for keys in list(self._tracked.values()):
            for key in list(keys):
                self._settle(key, horizon)
        for fileid in list(self._index_tombstones):
            for tombstone in list(self._index_tombstones.get(fileid, ())):
                if tombstone[2] is not None and tombstone[2] <= horizon:
                    self._drop_tombstone(fileid, tombstone)
        return self.versions_pruned - before

    # ------------------------------------------------------------ inspection

    def chain_length(self, fileid: int, rid: tuple[int, int]) -> int:
        return len(self._chains.get((fileid, *rid), ()))

    def live_versions(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    def reset(self) -> None:
        """Crash simulation: volatile version state is gone.  The commit
        clock keeps running so post-recovery snapshots stay monotonic."""
        self._chains.clear()
        self._writers.clear()
        self._current_ts.clear()
        self._txn_writes.clear()
        self._tracked.clear()
        self._index_tombstones.clear()
        self._txn_index_deletes.clear()
        self._active_snapshots.clear()

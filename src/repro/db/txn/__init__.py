"""Transactions, write-ahead logging and crash recovery (DESIGN.md §8)."""

from repro.db.txn.manager import Transaction, TransactionManager, TxnStatus
from repro.db.txn.recovery import (
    DurableStore,
    RecoveryReport,
    TxnHistory,
    recover,
    simulate_crash,
)
from repro.db.txn.wal import (
    LogRecord,
    LogRecordType,
    WriteAheadLog,
)

__all__ = [
    "DurableStore",
    "LogRecord",
    "LogRecordType",
    "RecoveryReport",
    "Transaction",
    "TransactionManager",
    "TxnHistory",
    "TxnStatus",
    "WriteAheadLog",
    "recover",
    "simulate_crash",
]

"""Transactions, WAL, crash recovery and concurrency control (DESIGN.md §8, §10)."""

from repro.db.txn.interleave import (
    InterleavedScheduler,
    ScheduleStall,
    TxnContext,
    TxnTask,
)
from repro.db.txn.locks import DeadlockError, LockManager, LockMode
from repro.db.txn.manager import Transaction, TransactionManager, TxnStatus
from repro.db.txn.mvcc import MVCCManager, Snapshot, WriteConflictError
from repro.db.txn.recovery import (
    DurableStore,
    RecoveryReport,
    TxnHistory,
    recover,
    simulate_crash,
)
from repro.db.txn.wal import (
    LogRecord,
    LogRecordType,
    WriteAheadLog,
    decode_record,
    encode_record,
    pack_records,
    unpack_records,
)

__all__ = [
    "DeadlockError",
    "DurableStore",
    "InterleavedScheduler",
    "LockManager",
    "LockMode",
    "LogRecord",
    "LogRecordType",
    "MVCCManager",
    "RecoveryReport",
    "ScheduleStall",
    "Snapshot",
    "Transaction",
    "TransactionManager",
    "TxnContext",
    "TxnHistory",
    "TxnStatus",
    "TxnTask",
    "WriteAheadLog",
    "WriteConflictError",
    "decode_record",
    "encode_record",
    "pack_records",
    "recover",
    "simulate_crash",
    "unpack_records",
]

"""Deterministic interleaved transaction scheduler (DESIGN.md §10).

Transactions are written as Python generators that yield at operation
boundaries; the :class:`InterleavedScheduler` steps *ready* tasks one
yield at a time in a reproducible order — strict round-robin by default,
or a seeded pick among the ready set — over one shared database.  The
scheduler owns nothing timing-visible of its own: every simulated I/O or
CPU charge comes from the operations the tasks run, so a given seed
replays the exact request stream, counter values and simulated clock,
and a single task stepped to completion is bit-identical to running its
operations inline.

Blocking is cooperative.  :meth:`TxnContext.lock` parks the task while
the lock manager keeps it waiting; the scheduler skips parked tasks,
credits their blocked time (simulated seconds between park and resume)
when they wake, and delivers deadlock victimisation by throwing
:class:`~repro.db.txn.locks.DeadlockError` into the parked generator —
the task may catch it to retry, or let it unwind for the scheduler to
abort and record.
"""

from __future__ import annotations

import enum
from random import Random
from typing import TYPE_CHECKING, Callable, Generator, Iterator

from repro.core.semantics import ContentType, SemanticInfo
from repro.db.errors import ExecutionError
from repro.db.txn.locks import DeadlockError, LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.catalog import Relation
    from repro.db.engine import Database
    from repro.db.heap import Rid
    from repro.db.txn.manager import Transaction

TaskBody = Callable[["TxnContext"], Generator]
"""A transaction script: ``def body(ctx): ... yield ...``."""


class ScheduleStall(ExecutionError):
    """Unfinished tasks exist but none is runnable — this cannot happen
    while deadlock detection runs at every block, so it means a task
    parked on something the scheduler does not know how to wake."""


class TaskState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    ABORTED = "aborted"


class TxnTask:
    """One scheduled transaction script and its accounting."""

    def __init__(self, name: str, body: TaskBody, scheduler: "InterleavedScheduler") -> None:
        self.name = name
        self.ctx = TxnContext(scheduler, self)
        self.gen = body(self.ctx)
        self.state = TaskState.READY
        self.blocked_since = 0.0
        self.blocked_seconds = 0.0
        self.commits = 0
        self.aborts = 0
        self.deadlock_aborts = 0
        self.result: object = None

    @property
    def finished(self) -> bool:
        return self.state in (TaskState.DONE, TaskState.ABORTED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TxnTask({self.name!r}, {self.state.value})"


class TxnContext:
    """The database handle a task body works through.

    Non-blocking helpers are plain methods; anything that can wait
    (:meth:`lock`, :meth:`lock_row`) is a generator the body must
    ``yield from``.  Rows are addressed by rid; semantics mirror the
    OLTP point-update path (ordinary random reads, update-class writes).
    """

    def __init__(self, scheduler: "InterleavedScheduler", task: TxnTask) -> None:
        self.scheduler = scheduler
        self.db = scheduler.db
        self.task = task
        self.txn: "Transaction | None" = None

    # ------------------------------------------------------------ lifecycle

    def begin(self) -> "Transaction":
        if self.txn is not None and self.txn.active:
            raise ExecutionError(f"task {self.task.name}: transaction open")
        self.txn = self.db.begin()
        self.scheduler.record("begin", self.task.name, self.txn.txid)
        return self.txn

    def commit(self) -> None:
        txn = self._require_txn()
        txn.commit()
        self.task.commits += 1
        self.scheduler.commit_sequence.append(txn.txid)
        self.scheduler.record("commit", self.task.name, txn.txid)

    def abort(self) -> None:
        txn = self._require_txn()
        txn.abort()
        self.task.aborts += 1
        self.scheduler.record("abort", self.task.name, txn.txid)

    def _require_txn(self) -> "Transaction":
        if self.txn is None or not self.txn.active:
            raise ExecutionError(f"task {self.task.name}: no open transaction")
        return self.txn

    # -------------------------------------------------------------- locking

    def lock(self, key: tuple, mode: LockMode = LockMode.EXCLUSIVE) -> Iterator:
        """Acquire ``key`` in ``mode``; parks the task while it waits.

        Raises :class:`DeadlockError` (possibly at a later resume) when
        this transaction is chosen as the deadlock victim.
        """
        txn = self._require_txn()
        locks = self.scheduler.manager.locks
        while not locks.acquire(txn.txid, key, mode):
            self.scheduler.record("block", self.task.name, key)
            yield BLOCKED
        return

    def lock_row(
        self, relation: "Relation", rid: "Rid", mode: LockMode = LockMode.EXCLUSIVE
    ) -> Iterator:
        yield from self.lock((relation.heap.file.fileid, *rid), mode)

    # ------------------------------------------------------------- row ops

    def fetch(self, relation: "Relation", rid: "Rid"):
        """Current row image (random read through the buffer pool)."""
        sem = SemanticInfo.random_access(ContentType.TABLE, relation.oid, 0)
        return relation.heap.fetch(self.db.pool, rid, sem)

    def snapshot_fetch(self, relation: "Relation", rid: "Rid"):
        """The row version visible to this transaction's snapshot — no
        lock taken, never blocks, never dirty-reads."""
        txn = self._require_txn()
        sem = SemanticInfo.random_access(ContentType.TABLE, relation.oid, 0)
        return relation.heap.fetch_visible(
            self.db.pool, rid, sem, txn.snapshot, self.scheduler.manager.mvcc
        )

    def update(self, relation: "Relation", rid: "Rid", new_row: tuple):
        """WAL-logged in-place update (caller holds the X lock)."""
        txn = self._require_txn()
        sem = SemanticInfo.update(ContentType.TABLE, relation.oid)
        return relation.heap.update(self.db.pool, rid, new_row, sem, txn=txn)

    def insert(self, relation: "Relation", row: tuple) -> "Rid":
        txn = self._require_txn()
        sem = SemanticInfo.update(ContentType.TABLE, relation.oid)
        rid = relation.heap.insert(self.db.pool, row, sem, txn=txn)
        # The fresh row is born X-locked: nobody else may touch it before
        # this transaction resolves (insert locks never wait — the rid is
        # brand new — so taking them inline cannot park the task).
        self.scheduler.manager.locks.acquire(
            txn.txid, (relation.heap.file.fileid, *rid), LockMode.EXCLUSIVE
        )
        return rid

    def delete(self, relation: "Relation", rid: "Rid") -> bool:
        txn = self._require_txn()
        sem = SemanticInfo.update(ContentType.TABLE, relation.oid)
        return relation.heap.delete(self.db.pool, rid, sem, txn=txn)


BLOCKED = object()
"""Yielded by :meth:`TxnContext.lock` while parked on a lock."""


class InterleavedScheduler:
    """Steps transaction tasks in a deterministic interleaving.

    ``seed=None`` is strict round-robin over the spawn order;
    an integer seed draws the next task from the ready set with a
    private :class:`random.Random` — different seeds explore different
    serializable histories, the same seed replays one exactly.
    """

    def __init__(self, db: "Database", seed: int | None = None) -> None:
        self.db = db
        self.manager = db.enable_wal()
        self.seed = seed
        self.rng = Random(seed) if seed is not None else None
        self.tasks: list[TxnTask] = []
        self._rr = 0
        self.steps = 0
        self.deadlock_aborts = 0
        self.commit_sequence: list[int] = []
        """txids in commit order — the replay-equality witness."""
        self.events: list[tuple] = []
        """Deterministic trace: (kind, task, detail) triples."""

    # ------------------------------------------------------------- spawning

    def spawn(self, body: TaskBody, name: str | None = None) -> TxnTask:
        task = TxnTask(name or f"task-{len(self.tasks)}", body, self)
        self.tasks.append(task)
        return task

    def record(self, kind: str, task: str, detail=None) -> None:
        self.events.append((kind, task, detail))

    # ------------------------------------------------------------- stepping

    def _runnable(self, task: TxnTask) -> bool:
        if task.state is TaskState.READY:
            return True
        if task.state is not TaskState.BLOCKED:
            return False
        txn = task.ctx.txn
        if txn is None:
            return True
        locks = self.manager.locks
        return not locks.is_waiting(txn.txid) or locks.is_victim(txn.txid)

    def step(self) -> bool:
        """Advance one runnable task by one yield; False when all done."""
        runnable = [t for t in self.tasks if self._runnable(t)]
        if not runnable:
            if any(not t.finished for t in self.tasks):
                stuck = [t.name for t in self.tasks if not t.finished]
                raise ScheduleStall(f"no runnable task among {stuck}")
            return False
        task = self._pick(runnable)
        self._resume(task)
        self.steps += 1
        return True

    def _pick(self, runnable: list[TxnTask]) -> TxnTask:
        if self.rng is not None:
            return runnable[self.rng.randrange(len(runnable))]
        # Round-robin: first runnable task at or after the rotating index.
        order = sorted(
            runnable, key=lambda t: (self.tasks.index(t) - self._rr) % len(self.tasks)
        )
        task = order[0]
        self._rr = (self.tasks.index(task) + 1) % len(self.tasks)
        return task

    def _resume(self, task: TxnTask) -> None:
        clock = self.db.clock
        if task.state is TaskState.BLOCKED:
            task.blocked_seconds += clock.now - task.blocked_since
            task.state = TaskState.READY
        locks = self.manager.locks
        txn = task.ctx.txn
        victimised = txn is not None and locks.take_victim(txn.txid)
        try:
            if victimised:
                self.record("victim", task.name, txn.txid)
                task.gen.throw(DeadlockError(txn.txid, (txn.txid,)))
            else:
                next(task.gen)
        except StopIteration as stop:
            task.result = stop.value
            if task.ctx.txn is not None and task.ctx.txn.active:
                task.ctx.commit()  # context-manager semantics: success commits
            task.state = TaskState.DONE
            self.record("done", task.name)
            return
        except DeadlockError:
            # The body let the victimisation unwind: abort and finish.
            if task.ctx.txn is not None and task.ctx.txn.active:
                task.ctx.abort()
            task.deadlock_aborts += 1
            self.deadlock_aborts += 1
            task.state = TaskState.ABORTED
            self.record("deadlock-abort", task.name)
            return
        txn = task.ctx.txn
        if txn is not None and self.manager.locks.is_waiting(txn.txid):
            task.state = TaskState.BLOCKED
            task.blocked_since = clock.now

    def run(self) -> None:
        while self.step():
            pass

    # ------------------------------------------------------------- metrics

    @property
    def commits(self) -> int:
        return sum(t.commits for t in self.tasks)

    @property
    def aborts(self) -> int:
        return sum(t.aborts for t in self.tasks)

    @property
    def blocked_seconds(self) -> float:
        return sum(t.blocked_seconds for t in self.tasks)

    def trace(self) -> tuple[tuple, ...]:
        """The immutable event trace (replay-equality comparisons)."""
        return tuple(self.events)

"""Crash simulation and ARIES-lite restart recovery (DESIGN.md §8).

The simulator's pages are shared Python objects, so "durability" is an
explicit model: the :class:`DurableStore` keeps *versioned page images*
captured whenever the buffer pool writes a heap page back (each image is
stamped with the WAL position of its flush), plus whole-file images taken
at every checkpoint.  A simulated crash at WAL position ``k`` therefore
reconstructs exactly what a machine would find on disk: the last
checkpoint image overlaid with every page flush that happened at or
before ``k``, pages never flushed coming back blank, and the WAL itself
truncated to its durable prefix.

Recovery then runs the three ARIES passes over that state:

* **analysis** — find the last checkpoint, rebuild the transaction table,
  and split transactions into winners (COMMIT in the log) and losers;
* **redo** — repeat history from the checkpoint's dirty-page-table
  minimum: heap records replay *conditionally* against each page's
  ``page_lsn`` (flushed pages are not redone twice); B-tree records are
  logical entry operations replayed against the checkpoint image of the
  tree;
* **undo** — walk loser records in reverse LSN order, skip changes
  already compensated, apply the inverse of each through the buffer pool
  (charging real I/O), log a CLR per inverse, and close each loser with
  an ABORT record.

Recovery finishes with a fresh checkpoint, as a real system would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.semantics import ContentType, SemanticInfo
from repro.db.btree import BTree, BTreeNode
from repro.db.heap import HeapFile
from repro.db.pages import FileKind, HeapPage
from repro.db.txn.wal import UNDOABLE_TYPES, LogRecord, LogRecordType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database


# --------------------------------------------------------- page image copies


def copy_heap_page(page: HeapPage) -> HeapPage:
    """A frozen image of one heap page (rows are immutable tuples)."""
    clone = HeapPage(page.capacity)
    clone.rows = list(page.rows)
    clone.num_deleted = page.num_deleted
    clone.page_lsn = page.page_lsn
    return clone


def copy_btree_node(node: BTreeNode) -> BTreeNode:
    """A frozen image of one B-tree node."""
    clone = BTreeNode(node.leaf)
    clone.keys = list(node.keys)
    clone.rids = list(node.rids)
    clone.children = list(node.children)
    clone.next_leaf = node.next_leaf
    clone.page_lsn = node.page_lsn
    return clone


@dataclass
class FileImage:
    """Checkpoint-time image of one database file."""

    kind: FileKind
    pages: list
    root_pageno: int | None = None
    entry_count: int = 0

    @classmethod
    def of_heap(cls, heap: HeapFile) -> "FileImage":
        return cls(
            kind=FileKind.HEAP,
            pages=[copy_heap_page(p) for p in heap.file.pages],
        )

    @classmethod
    def of_btree(cls, btree: BTree) -> "FileImage":
        return cls(
            kind=FileKind.INDEX,
            pages=[copy_btree_node(n) for n in btree.file.pages],
            root_pageno=btree.root_pageno,
            entry_count=btree.entry_count,
        )


class DurableStore:
    """What has actually reached stable storage, by WAL position.

    ``record_page_flush`` appends a versioned heap-page image each time
    the buffer pool steals or writes back a page; ``record_checkpoint``
    stores whole-file images (the simulator's stand-in for "the data
    files as of this checkpoint").  Both histories are append-only, so a
    crash can be replayed at *any* WAL prefix from one recorded run.
    """

    def __init__(self) -> None:
        self._page_flushes: dict[tuple[int, int], list[tuple[int, HeapPage]]] = {}
        self._checkpoints: list[tuple[int, dict[int, FileImage]]] = []
        self.page_flushes_recorded = 0

    def record_page_flush(
        self, fileid: int, pageno: int, page: HeapPage, flush_lsn: int
    ) -> None:
        versions = self._page_flushes.setdefault((fileid, pageno), [])
        versions.append((flush_lsn, copy_heap_page(page)))
        self.page_flushes_recorded += 1

    def record_checkpoint(self, lsn: int, images: dict[int, FileImage]) -> None:
        self._checkpoints.append((lsn, images))

    def latest_checkpoint(
        self, at_lsn: int
    ) -> tuple[int, dict[int, FileImage]] | None:
        for lsn, images in reversed(self._checkpoints):
            if lsn <= at_lsn:
                return lsn, images
        return None

    def heap_pages_as_of(
        self, fileid: int, after_lsn: int, at_lsn: int
    ) -> dict[int, HeapPage]:
        """Latest flushed image of each page, flushed in ``(after, at]``."""
        result: dict[int, HeapPage] = {}
        for (fid, pageno), versions in self._page_flushes.items():
            if fid != fileid:
                continue
            for flush_lsn, image in reversed(versions):
                if after_lsn < flush_lsn <= at_lsn:
                    result[pageno] = image
                    break
        return result

    def compact(self, upto_lsn: int) -> None:
        """Drop history not needed to crash at any point ``>= upto_lsn``.

        Called at each checkpoint with the *previous* checkpoint's LSN,
        this bounds the store to roughly two checkpoint windows instead
        of total write traffic: checkpoints older than the newest one at
        or before ``upto_lsn`` go away, and each page keeps only its
        newest image at or before ``upto_lsn`` plus everything later.
        Crash points older than that window stop being reconstructible —
        sweep tests capture their history before extra checkpoints run.
        """
        anchor = self.latest_checkpoint(upto_lsn)
        if anchor is not None:
            anchor_lsn = anchor[0]
            self._checkpoints = [
                (lsn, images)
                for lsn, images in self._checkpoints
                if lsn >= anchor_lsn
            ]
        for key, versions in self._page_flushes.items():
            old = [v for v in versions if v[0] <= upto_lsn]
            recent = [v for v in versions if v[0] > upto_lsn]
            self._page_flushes[key] = old[-1:] + recent


@dataclass
class TxnHistory:
    """Immutable capture of one run's WAL + durable state for crash sweeps."""

    records: tuple[LogRecord, ...]
    durable: DurableStore
    flushed_lsn: int = 0
    """WAL position actually forced to storage when captured — the
    default crash point (an unforced log tail is lost at power-off)."""

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


@dataclass
class RecoveryReport:
    """What one restart recovery did."""

    checkpoint_lsn: int
    log_records_scanned: int
    winners: set[int] = field(default_factory=set)
    losers: set[int] = field(default_factory=set)
    redo_applied: int = 0
    redo_skipped: int = 0
    undo_applied: int = 0
    sim_seconds: float = 0.0


# ------------------------------------------------------------------ crashing


def simulate_crash(
    db: "Database",
    at_lsn: int | None = None,
    history: TxnHistory | None = None,
) -> None:
    """Crash the database at WAL position ``at_lsn``.

    The default crash point is the *forced* WAL position
    (``wal.flushed_lsn``): records still sitting in the log buffer are
    lost at power-off, exactly as on real hardware.  An explicit
    ``at_lsn`` may name any position up to the last appended record —
    the crash-point sweep uses this to test every prefix as if the
    buffer had reached disk at that instant.

    Buffer-pool contents are dropped without writeback, every heap file is
    rewound to its durable image (checkpoint base + page flushes visible
    at ``at_lsn``), every index to its last checkpoint image, and the WAL
    to its prefix.  Passing an explicit ``history`` (from
    :meth:`TransactionManager.capture_history`) makes the crash
    repeatable: the same run can be re-crashed at every WAL position.
    """
    mgr = db.txn_manager
    if mgr is None:
        raise ValueError("simulate_crash needs an active transaction manager")
    if history is None:
        history = mgr.capture_history()
    k = history.flushed_lsn if at_lsn is None else at_lsn
    if not 0 <= k <= history.last_lsn:
        raise ValueError(f"crash point {k} outside WAL [0, {history.last_lsn}]")

    db.pool.discard_all()
    ckpt = history.durable.latest_checkpoint(k)
    if ckpt is None:
        # Bulk loading is unlogged; the baseline checkpoint written when
        # the subsystem attaches is where recoverable history starts.
        raise ValueError(
            f"crash point {k} predates the baseline checkpoint"
        )
    ckpt_lsn, images = ckpt

    for heap in mgr.known_heaps().values():
        _restore_heap(heap, images, history.durable, ckpt_lsn, k)
    for btree in mgr.known_btrees().values():
        _restore_btree(btree, images)

    mgr.wal.restore_prefix(history.records[:k])
    mgr.durable = DurableStore()
    mgr._last_checkpoint_lsn = 0
    mgr.dirty_pages.clear()
    mgr.invalidate_active()
    mgr.crashes += 1


def _restore_heap(
    heap: HeapFile,
    images: dict[int, FileImage],
    durable: DurableStore,
    ckpt_lsn: int,
    at_lsn: int,
) -> None:
    fileid = heap.file.fileid
    image = images.get(fileid)
    base = [copy_heap_page(p) for p in image.pages] if image is not None else []
    overlay = durable.heap_pages_as_of(fileid, ckpt_lsn, at_lsn)
    npages = max([len(base)] + [pageno + 1 for pageno in overlay])
    pages: list[HeapPage] = []
    for pageno in range(npages):
        if pageno in overlay:
            pages.append(copy_heap_page(overlay[pageno]))
        elif pageno < len(base):
            pages.append(base[pageno])
        else:
            # Allocated but never flushed: garbage after a crash.
            pages.append(HeapPage(heap.rows_per_page))
    heap.file.pages = pages
    heap.row_count = _live_rows(heap)


def _restore_btree(btree: BTree, images: dict[int, FileImage]) -> None:
    image = images.get(btree.file.fileid)
    if image is None:
        # Created after the last checkpoint: comes back empty; redo replays
        # every logged entry operation.
        btree.file.pages = [BTreeNode(leaf=True)]
        btree.root_pageno = 0
        btree.file.extent_map.lba_of(0)
        btree.entry_count = 0
        return
    btree.file.pages = [copy_btree_node(n) for n in image.pages]
    btree.root_pageno = image.root_pageno
    btree.entry_count = image.entry_count


def _live_rows(heap: HeapFile) -> int:
    return sum(
        len(page.rows) - page.num_deleted for page in heap.file.pages
    )


# ---------------------------------------------------------------- recovering


def recover(db: "Database") -> RecoveryReport:
    """Run restart recovery (analysis, redo, undo) after a crash.

    The charged sequential log scan starts at the last checkpoint's
    dirty-page-table minimum (the ARIES master-record shortcut), so with
    periodic checkpoints recovery cost is bounded by the distance to the
    last checkpoint, not total history.  Undo of losers that were active
    across the checkpoint follows their backchains through the in-memory
    record list (a real system would take random log reads there).
    """
    mgr = db.txn_manager
    if mgr is None:
        raise ValueError("recover needs an active transaction manager")
    started = db.clock.now
    all_records = mgr.wal.records

    # ---- analysis ---------------------------------------------------------
    ckpt_record = next(
        (
            r
            for r in reversed(all_records)
            if r.type is LogRecordType.CHECKPOINT
        ),
        None,
    )
    ckpt_lsn = ckpt_record.lsn if ckpt_record is not None else 0
    redo_lsn = ckpt_lsn or 1
    if ckpt_record is not None and ckpt_record.dirty_pages:
        redo_lsn = min([ckpt_lsn] + list(ckpt_record.dirty_pages.values()))
    records = mgr.wal.read_records(redo_lsn)
    report = _analyse(records, ckpt_record, ckpt_lsn)

    # ---- redo: repeat history --------------------------------------------
    heaps = mgr.known_heaps()
    btrees = mgr.known_btrees()
    for record in records:
        _redo(db, record, heaps, btrees, report)

    # ---- undo losers in reverse LSN order --------------------------------
    compensated = {
        r.compensates for r in all_records if r.compensates is not None
    }
    open_losers = set(report.losers)
    for record in reversed(all_records):
        if record.txid not in open_losers:
            continue
        if record.type not in UNDOABLE_TYPES:
            continue
        if record.compensates is not None or record.lsn in compensated:
            continue  # CLRs are never undone; compensated work stays undone.
        mgr.apply_undo(record)
        report.undo_applied += 1
    for txid in sorted(open_losers):
        mgr.wal.append(LogRecordType.ABORT, txid=txid)

    # ---- finish: settle row counts, persist, checkpoint ------------------
    for heap in heaps.values():
        heap.row_count = _live_rows(heap)
    db.pool.flush_all()
    mgr.checkpoint()
    report.sim_seconds = db.clock.now - started
    mgr.recoveries += 1
    return report


def _analyse(
    records: list[LogRecord],
    ckpt_record: LogRecord | None,
    ckpt_lsn: int,
) -> RecoveryReport:
    """Rebuild the transaction table from the checkpoint plus the scanned
    suffix.  A transaction active at the checkpoint can only commit or
    abort *after* it, so the suffix sees every outcome."""
    begun: set[int] = set(
        ckpt_record.active_txns or {}
    ) if ckpt_record is not None else set()
    winners: set[int] = set()
    closed: set[int] = set()
    for record in records:
        if record.type is LogRecordType.BEGIN:
            begun.add(record.txid)
        elif record.type is LogRecordType.COMMIT:
            winners.add(record.txid)
        elif record.type is LogRecordType.ABORT:
            closed.add(record.txid)
    return RecoveryReport(
        checkpoint_lsn=ckpt_lsn,
        log_records_scanned=len(records),
        winners=winners,
        losers=begun - winners - closed,
    )


def _redo(
    db: "Database",
    record: LogRecord,
    heaps: dict[int, HeapFile],
    btrees: dict[int, BTree],
    report: RecoveryReport,
) -> None:
    rtype = record.type
    if rtype in (
        LogRecordType.HEAP_INSERT,
        LogRecordType.HEAP_DELETE,
        LogRecordType.HEAP_UPDATE,
    ):
        heap = heaps[record.fileid]
        _ensure_heap_page(heap, record.pageno)
        sem = SemanticInfo.random_access(
            ContentType.TABLE, record.oid, level=0
        )
        page = db.pool.get_page(heap.file, record.pageno, sem)
        if page.page_lsn >= record.lsn:
            report.redo_skipped += 1  # already on disk (flushed after write)
            return
        if rtype is LogRecordType.HEAP_DELETE:
            if 0 <= record.slot < len(page.rows):
                page.delete(record.slot)
        else:
            place_row(page, record.slot, record.row)
        page.page_lsn = record.lsn
        db.pool.mark_dirty(
            heap.file, record.pageno, SemanticInfo.update(ContentType.TABLE, record.oid)
        )
        report.redo_applied += 1
    elif rtype in (LogRecordType.BTREE_INSERT, LogRecordType.BTREE_DELETE):
        # Logical index replay: the tree was restored to its checkpoint
        # image, so exactly the records after the checkpoint re-apply.
        if record.lsn <= report.checkpoint_lsn:
            report.redo_skipped += 1
            return
        btree = btrees[record.fileid]
        sem = SemanticInfo.update(ContentType.INDEX, record.oid)
        if rtype is LogRecordType.BTREE_INSERT:
            btree.insert(db.pool, record.key, record.rid, sem)
        else:
            btree.delete(db.pool, record.key, record.rid, sem)
        report.redo_applied += 1


def _ensure_heap_page(heap: HeapFile, pageno: int) -> None:
    """Materialise lost (never-flushed) trailing pages redo writes into."""
    while heap.file.num_pages <= pageno:
        heap.file.allocate_page(HeapPage(heap.rows_per_page))


def place_row(page: HeapPage, slot: int, row: tuple) -> None:
    """Physiological redo/undo helper: put ``row`` at exactly ``slot``."""
    rows = page.rows
    while len(rows) < slot:
        rows.append(None)
        page.num_deleted += 1
    if len(rows) == slot:
        rows.append(row)
    else:
        if rows[slot] is None:
            page.num_deleted -= 1
        rows[slot] = row

"""Plan nodes and the execution context.

Plan trees are built programmatically by the workload layer (there is no
SQL parser — DESIGN.md §6); every node implements the iterator model via a
generator-returning :meth:`PlanNode.execute`.  Nodes satisfy the
:class:`repro.core.levels.PlanLike` protocol, so the core level algorithms
apply directly, and random-access operators report the (oid, level) pairs
that Rule 5's registry needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.registry import RandomOperatorRef
from repro.db.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.bufferpool import BufferPool
    from repro.db.temp import TempFileManager
    from repro.db.txn.mvcc import MVCCManager, Snapshot
    from repro.sim.clock import SimClock
    from repro.sim.params import SimulationParameters

_CPU_FLUSH_TUPLES = 512


class _Pulse:
    """Scheduling pulse: a non-row item operators emit periodically.

    Blocking operators (hash builds, sorts, aggregations) consume their
    entire input before producing the first row; without pulses, a
    co-running query would execute such a phase atomically and the
    concurrency experiments (paper Section 6.4) would interleave nothing.
    Operators yield ``PULSE`` every few hundred processed items and pass
    through pulses from their children; the scheduler counts them against
    a query's quantum, and the engine filters them out of results.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<pulse>"


PULSE = _Pulse()

PULSE_EVERY = 256
"""Items processed between pulses inside heavy operator loops
(row-at-a-time path; the vectorized path pulses once per batch)."""

VECTOR_SIZE = 1024
"""Target rows per batch on the vectorized path.

Operators that produce rows from an in-memory source (index scans, sorts,
aggregate emission) chunk their output at this size; page-backed scans use
the natural heap-page capacity instead.  Batches are plain lists of row
tuples, treated as immutable by convention: an operator must never mutate
a batch it received — it builds a new list (or passes the old one along).
"""


def rows_only(items):
    """Filter pulses out of an operator's output stream."""
    return (item for item in items if item is not PULSE)


class PushConsumer:
    """One streaming operator's slot in a push pipeline (DESIGN.md §12).

    The morsel driver (:mod:`repro.db.push`) walks a pipeline's chain of
    streaming operators bottom-up and *pushes* every morsel into their
    consumers: ``consume(batch, out)`` transforms one input batch and
    appends zero or more output batches to ``out``.  Consumers are
    stateless with respect to batch boundaries — all cross-batch state
    (builds, buffers, accumulators) belongs to pipeline breakers, which
    implement :meth:`PlanNode.push_pipeline` instead.
    """

    __slots__ = ()

    def consume(self, batch: list, out: list) -> None:
        raise NotImplementedError


def chunk_rows(rows, size: int = VECTOR_SIZE):
    """Group an in-memory row sequence into batches of ``size`` rows."""
    if isinstance(rows, list):
        for start in range(0, len(rows), size):
            yield rows[start:start + size]
        return
    batch: list = []
    for row in rows:
        batch.append(row)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


@dataclass
class ExecutionContext:
    """Per-query runtime state threaded through the operators."""

    pool: "BufferPool"
    temp: "TempFileManager"
    clock: "SimClock"
    params: "SimulationParameters"
    query_id: int
    work_mem_rows: int
    levels: dict[int, int] = field(default_factory=dict)
    snapshot: "Snapshot | None" = None
    """MVCC snapshot the query reads under (None: read current state —
    the only mode before DESIGN.md §10, and still the default)."""
    mvcc: "MVCCManager | None" = None
    """Version-chain store backing :attr:`snapshot` resolution."""
    _pending_cpu_tuples: int = 0

    def level(self, node: "PlanNode") -> int:
        """Effective plan level of a node (0 when levels are not computed)."""
        return self.levels.get(id(node), 0)

    def cpu_tick(self, tuples: int = 1) -> None:
        """Charge modelled CPU time for processed tuples (batched).

        Time reaches the clock in whole ``_CPU_FLUSH_TUPLES`` chunks with
        the remainder carried over, so ``cpu_tick(n)`` emits bit-for-bit
        the same clock advances as ``n`` single-tuple ticks — the
        vectorized executor's per-batch charging stays exactly on the
        row-at-a-time path's CPU-time model.
        """
        pending = self._pending_cpu_tuples + tuples
        if pending >= _CPU_FLUSH_TUPLES:
            chunk_seconds = _CPU_FLUSH_TUPLES * self.params.cpu_s_per_tuple
            while pending >= _CPU_FLUSH_TUPLES:
                self.clock.advance_cpu(chunk_seconds)
                pending -= _CPU_FLUSH_TUPLES
        self._pending_cpu_tuples = pending

    def flush_cpu(self) -> None:
        if self._pending_cpu_tuples:
            self.clock.advance_cpu(
                self._pending_cpu_tuples * self.params.cpu_s_per_tuple
            )
            self._pending_cpu_tuples = 0


class PlanNode:
    """Base class for all operators."""

    is_blocking = False

    def __init__(self, *children: "PlanNode", label: str | None = None) -> None:
        self._children = list(children)
        self.label = label if label is not None else type(self).__name__

    @property
    def children(self) -> list["PlanNode"]:
        return self._children

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        raise NotImplementedError

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        """Vectorized execution: yields row batches (lists) and pulses.

        The built-in operators override this with native batch loops; this
        default adapts any row-at-a-time :meth:`execute` (custom nodes,
        refresh streams) so a plan mixing both styles still runs under a
        vectorized engine.  It forwards one-row mini-batches rather than
        accumulating: ``execute`` may perform I/O between rows, and
        regrouping across such a boundary would reorder a downstream
        operator's requests relative to the row path.
        """
        for item in self.execute(ctx):
            yield item if item is PULSE else [item]

    # ------------------------------------------------------------ push mode

    def push_consumer(self, ctx: ExecutionContext) -> "PushConsumer | None":
        """This operator's :class:`PushConsumer`, or None.

        Streaming single-child operators (filter, project) return a
        consumer the morsel driver chains morsels through; everything
        else returns None and is handled as a pipeline source, breaker,
        or fallback (see :mod:`repro.db.push`).
        """
        del ctx
        return None

    def push_pipeline(self, ctx: ExecutionContext, batches) -> Iterator:
        """Pipeline-breaker entry point for the push executor.

        ``batches`` is the upstream pipeline's batch/pulse stream; the
        breaker consumes it fully (the pipeline boundary) and yields its
        own output batches.  Blocking operators override this — their
        ``execute_batch`` delegates here with the child's vectorized
        stream, so both engines share one implementation.  The driver
        detects support by override (``type(node).push_pipeline is not
        PlanNode.push_pipeline``); this default is never called.
        """
        raise NotImplementedError(
            f"{self.label} has no push pipeline implementation"
        )

    def random_refs(self, level: int) -> list[RandomOperatorRef]:
        """(oid, level) pairs this operator contributes to Rule 5's registry."""
        del level
        return []

    # ----------------------------------------------------------------- debug

    def explain(self, indent: int = 0, levels: dict[int, int] | None = None) -> str:
        """Readable plan tree, optionally annotated with effective levels."""
        mark = ""
        if levels is not None and id(self) in levels:
            mark = f"  [level {levels[id(self)]}]"
        lines = ["  " * indent + self.label + mark]
        for child in self._children:
            lines.append(child.explain(indent + 1, levels))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label!r})"


def require_children(node: PlanNode, count: int) -> None:
    if len(node.children) != count:
        raise ExecutionError(
            f"{node.label} needs exactly {count} child(ren), "
            f"got {len(node.children)}"
        )

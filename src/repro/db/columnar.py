"""Columnar batches and the declarative column-expression layer.

The push executor (DESIGN.md §12) represents data *inside* a pipeline as
arrays of columns — plain Python lists of primitives, one per attribute —
and converts back to row tuples only at pipeline breakers and the result
boundary.  Two pieces live here:

* **Conversion** between the row-tuple batches every operator exchanges
  (`rows_to_columns` / `columns_to_rows`, plus tombstone-aware page
  extraction via :meth:`~repro.db.pages.HeapPage.live_columns`).

* A tiny **declarative expression AST** (:func:`col`, arithmetic via
  operator overloading, :class:`ColumnPredicate` conjunctions) that
  describes scan predicates and aggregate value expressions *as data*
  rather than as opaque row lambdas.  The fused Q1/Q6 kernels
  (:mod:`repro.db.fused`) compile these to specialized Python source that
  evaluates predicates column-at-a-time over whole morsels — zero
  per-row lambda dispatch.  A plan node carries the declarative form
  *alongside* its row lambda; both must describe the same computation
  (the three-mode differential tests enforce agreement bit-for-bit).

Expressions compile to source with embedded parameter slots (``_K0`` …)
so constants are passed by reference into the generated namespace —
never round-tripped through ``repr``.
"""

from __future__ import annotations

from repro.db.errors import ExecutionError

# --------------------------------------------------------------- conversion


def rows_to_columns(rows: list, width: int) -> list[list]:
    """Transpose a batch of row tuples into ``width`` column lists.

    Every row must have exactly ``width`` attributes; an empty batch
    yields ``width`` empty columns.
    """
    if not rows:
        return [[] for _ in range(width)]
    columns = [list(col) for col in zip(*rows)]
    if len(columns) != width:
        raise ExecutionError(
            f"rows have {len(columns)} attributes, schema has {width}"
        )
    return columns


def columns_to_rows(columns: list[list]) -> list[tuple]:
    """Transpose column lists back into a batch of row tuples."""
    if not columns:
        return []
    return list(zip(*columns))


# ------------------------------------------------------------- expressions


def COLUMN_REF(pos: int) -> str:
    """Render a column reference against extracted column arrays."""
    return f"c{pos}[i]"


def ROW_REF(pos: int) -> str:
    """Render a column reference against the current row tuple ``r``."""
    return f"r[{pos}]"



class ColExpr:
    """Arithmetic expression over column values (one morsel row at a time).

    Built with :func:`col` and Python operators; compiled by the fused
    kernels via :meth:`source`.  Evaluation semantics are exactly those
    of the equivalent row lambda — same operand order, same float ops.
    """

    __slots__ = ()

    def source(self, params: list, ref=None) -> str:
        """Python source for this expression.

        Column references render through ``ref`` (position -> source
        text), defaulting to the columnar form ``c<pos>[i]``; the fused
        kernels pass :data:`ROW_REF` where they hold the morsel's row
        tuple ``r`` instead of extracted columns.  Constants append
        their value to ``params`` and render as the parameter slot
        ``_K<n>`` (bound into the kernel namespace, not repr'd).
        """
        raise NotImplementedError

    def columns(self) -> set[int]:
        """Column positions this expression reads."""
        raise NotImplementedError

    # Arithmetic composes left-associatively, exactly like the row
    # lambdas the expressions mirror.
    def __add__(self, other):
        return _BinOp("+", self, _wrap(other))

    def __radd__(self, other):
        return _BinOp("+", _wrap(other), self)

    def __sub__(self, other):
        return _BinOp("-", self, _wrap(other))

    def __rsub__(self, other):
        return _BinOp("-", _wrap(other), self)

    def __mul__(self, other):
        return _BinOp("*", self, _wrap(other))

    def __rmul__(self, other):
        return _BinOp("*", _wrap(other), self)


class _Col(ColExpr):
    __slots__ = ("pos",)

    def __init__(self, pos: int) -> None:
        if pos < 0:
            raise ExecutionError("column position must be >= 0")
        self.pos = pos

    def source(self, params: list, ref=None) -> str:
        return (ref or COLUMN_REF)(self.pos)

    def columns(self) -> set[int]:
        return {self.pos}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"col({self.pos})"


class _Const(ColExpr):
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def source(self, params: list, ref=None) -> str:
        params.append(self.value)
        return f"_K{len(params) - 1}"

    def columns(self) -> set[int]:
        return set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"const({self.value!r})"


class _BinOp(ColExpr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: ColExpr, right: ColExpr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def source(self, params: list, ref=None) -> str:
        return (
            f"({self.left.source(params, ref)} {self.op} "
            f"{self.right.source(params, ref)})"
        )

    def columns(self) -> set[int]:
        return self.left.columns() | self.right.columns()


def _wrap(value) -> ColExpr:
    return value if isinstance(value, ColExpr) else _Const(value)


def col(pos: int) -> ColExpr:
    """Reference to the row attribute at ``pos``."""
    return _Col(pos)


# -------------------------------------------------------------- predicates


class ColumnPredicate:
    """Conjunction of per-column comparisons, compiled to one selection pass.

    The fused kernels render the whole conjunction inside a single list
    comprehension building the morsel's selection vector, so every
    conjunct is evaluated column-at-a-time with short-circuiting — the
    same boolean result as the equivalent row lambda.
    """

    __slots__ = ("conjuncts",)

    def __init__(self, conjuncts: tuple = ()) -> None:
        self.conjuncts = tuple(conjuncts)

    def __and__(self, other: "ColumnPredicate") -> "ColumnPredicate":
        return ColumnPredicate(self.conjuncts + other.conjuncts)

    def source(self, params: list, ref=None) -> str:
        """One boolean expression over the morsel's column arrays."""
        if not self.conjuncts:
            return "True"
        return " and ".join(c.source(params, ref) for c in self.conjuncts)

    def columns(self) -> set[int]:
        used: set[int] = set()
        for conjunct in self.conjuncts:
            used |= conjunct.columns()
        return used


class _Compare:
    """``expr OP constant`` conjunct."""

    __slots__ = ("expr", "op", "value")

    _OPS = {"<", "<=", ">", ">=", "==", "!="}

    def __init__(self, expr: ColExpr, op: str, value) -> None:
        if op not in self._OPS:
            raise ExecutionError(f"unknown comparison {op!r}")
        self.expr = expr
        self.op = op
        self.value = value

    def source(self, params: list, ref=None) -> str:
        left = self.expr.source(params, ref)
        params.append(self.value)
        return f"{left} {self.op} _K{len(params) - 1}"

    def columns(self) -> set[int]:
        return self.expr.columns()


class _Between:
    """``lo OP expr OP hi`` chained-comparison conjunct."""

    __slots__ = ("expr", "lo", "hi", "lo_incl", "hi_incl")

    def __init__(self, expr, lo, hi, lo_incl: bool, hi_incl: bool) -> None:
        self.expr = expr
        self.lo = lo
        self.hi = hi
        self.lo_incl = lo_incl
        self.hi_incl = hi_incl

    def source(self, params: list, ref=None) -> str:
        mid = self.expr.source(params, ref)
        params.append(self.lo)
        lo_slot = f"_K{len(params) - 1}"
        params.append(self.hi)
        hi_slot = f"_K{len(params) - 1}"
        lo_op = "<=" if self.lo_incl else "<"
        hi_op = "<=" if self.hi_incl else "<"
        return f"{lo_slot} {lo_op} {mid} {hi_op} {hi_slot}"

    def columns(self) -> set[int]:
        return self.expr.columns()


def cmp(expr: ColExpr, op: str, value) -> ColumnPredicate:
    """Single comparison predicate: ``expr OP value``."""
    return ColumnPredicate((_Compare(expr, op, value),))


def between(
    expr: ColExpr, lo, hi, lo_incl: bool = True, hi_incl: bool = True
) -> ColumnPredicate:
    """Range predicate rendered as a chained comparison (one conjunct)."""
    return ColumnPredicate((_Between(expr, lo, hi, lo_incl, hi_incl),))

"""Exception hierarchy for the mini-DBMS."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction."""


class CatalogError(ReproError):
    """Unknown or duplicate relation/index, schema mismatch."""


class ExecutionError(ReproError):
    """Query execution failed (bad plan shape, operator misuse)."""


class StorageLayoutError(ReproError):
    """Inconsistent page/extent bookkeeping."""

"""Exception hierarchy for the mini-DBMS and the storage stack.

This module must stay dependency-free: it is imported by both the DBMS
layer above and the storage layer below (devices raise
:class:`TransientIOError`/:class:`DeviceFailedError`, the tier chain
raises :class:`CorruptBlockError`), so it is the one place the two
layers may share vocabulary without an import cycle.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction."""


class CatalogError(ReproError):
    """Unknown or duplicate relation/index, schema mismatch."""


class ExecutionError(ReproError):
    """Query execution failed (bad plan shape, operator misuse)."""


class StorageError(ReproError):
    """Base class for storage-stack failures (DESIGN.md §13).

    Everything the storage hierarchy can signal — bad construction
    parameters, layout bookkeeping bugs, device faults and integrity
    violations — derives from this class, so callers can fence off the
    whole storage stack with one ``except StorageError``.
    """


class StorageLayoutError(StorageError):
    """Inconsistent page/extent bookkeeping."""


class StorageConfigError(StorageError, ValueError):
    """Invalid argument or construction parameter in the storage layer.

    Subclasses :class:`ValueError` so call sites (and tests) written
    against the historical bare ``ValueError`` raises keep working.
    """


class TransientIOError(StorageError):
    """A device access failed but may succeed on retry.

    Raised by :class:`~repro.storage.faults.FaultyDevice` *before* any
    service time is charged; the tier chain's retry policy charges the
    deterministic backoff to the sim clock instead.
    """

    def __init__(
        self, device: str, *, lba: int | None = None, write: bool = False
    ) -> None:
        op = "write" if write else "read"
        where = f" at lba {lba}" if lba is not None else ""
        super().__init__(f"transient {op} error on {device!r}{where}")
        self.device = device
        self.lba = lba
        self.write = write


class CorruptBlockError(StorageError):
    """A block failed checksum verification and no valid copy remains.

    Surfaces corruption as a typed, loud failure — a verified read can
    return correct data or raise, never silently wrong results.
    """

    def __init__(
        self,
        reason: str = "checksum verification failed",
        *,
        lbn: int | None = None,
        tier: str | None = None,
    ) -> None:
        where = "".join(
            (
                f" lbn {lbn}" if lbn is not None else "",
                f" on {tier!r}" if tier is not None else "",
            )
        )
        super().__init__(f"corrupt block{where}: {reason}")
        self.lbn = lbn
        self.tier = tier
        self.reason = reason


class DeviceFailedError(StorageError):
    """A device is (or just became) permanently unavailable.

    The tier chain responds by failing the owning tier out of the
    hierarchy and remapping its blocks to the next tier; only the loss
    of the backing store propagates to the caller.
    """

    def __init__(self, device: str, *, reason: str = "device failed") -> None:
        super().__init__(f"{device!r}: {reason}")
        self.device = device
        self.reason = reason

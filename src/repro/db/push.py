"""Push-based morsel-parallel executor (DESIGN.md §12).

``run_push`` walks the plan tree once and wires each pipeline as a chain
of *consumers* driven from its morsel source, instead of a chain of
pull-style generators:

* **Sources** — :meth:`SeqScan.push_batches` emits one batch per
  buffer-pool read-ahead window (a *morsel*) rather than one per page.
* **Streaming operators** — nodes exposing :meth:`PlanNode.
  push_consumer` (Filter, Project) are collapsed into a flat consumer
  chain; :func:`_drive` pushes every morsel through the whole chain with
  plain method calls — no generator frame per operator per batch.
* **Pipeline breakers** — nodes overriding :meth:`PlanNode.
  push_pipeline` (Sort, TopN, aggregates, Materialize) consume the
  child's push stream and start the next pipeline; the implementations
  are shared with the vectorized engine, so spill behaviour is
  literally the same code.
* **Fused kernels** — aggregate-over-scan segments carrying declarative
  expression mirrors compile to specialized column-at-a-time source
  (:mod:`repro.db.fused`).
* **Fallbacks** — operators whose request order is inherently
  row-granular (IndexScan, Limit, NestedLoopIndexJoin) run their whole
  subtree on the vectorized path via ``execute_batch``, which is
  bit-identical by construction.

The emitted stream has the vectorized shape — row-tuple batches
interleaved with scheduling pulses — so the engine consumes all three
executor modes through one code path.
"""

from __future__ import annotations

from typing import Iterator

from repro.db import fused
from repro.db.executor.join import Hash, HashJoin
from repro.db.executor.scan import SeqScan
from repro.db.plan import PULSE, ExecutionContext, PlanNode


def run_push(plan: PlanNode, ctx: ExecutionContext) -> Iterator:
    """Execute ``plan`` push-style; yields batches and pulses."""
    return _stream(plan, ctx)


def _stream(node: PlanNode, ctx: ExecutionContext) -> Iterator:
    kernel = fused.match(node, ctx)
    if kernel is not None:
        return kernel
    if type(node) is SeqScan:
        return node.push_batches(ctx)
    if type(node) is Hash:
        # Standalone Hash (outside a HashJoin) is a pass-through.
        return _stream(node.children[0], ctx)
    if type(node) is HashJoin:
        build = node.hash_node.build_pipeline(
            ctx, _stream(node.hash_node.children[0], ctx)
        )
        return node.push_join(ctx, _stream(node.children[0], ctx), build)
    consumer = node.push_consumer(ctx)
    if consumer is not None:
        consumers = [consumer]
        source = node.children[0]
        while True:
            consumer = source.push_consumer(ctx)
            if consumer is None:
                break
            consumers.append(consumer)
            source = source.children[0]
        # Collected top-down; batches flow through bottom-up.
        consumers.reverse()
        return _drive(_stream(source, ctx), consumers)
    if type(node).push_pipeline is not PlanNode.push_pipeline:
        return node.push_pipeline(ctx, _stream(node.children[0], ctx))
    # Row-granular or unknown operator: the whole subtree runs
    # vectorized, which is bit-identical by construction.
    return node.execute_batch(ctx)


def _drive(source: Iterator, consumers: list) -> Iterator:
    """Push every source morsel through a flat consumer chain.

    A consumer may split, shrink or drop its input (a filter emitting
    nothing ends that morsel's journey early), so each stage maps a list
    of batches to a list of batches.  Pulses pass straight through —
    streaming consumers add none, exactly like their pull-mode
    ``execute_batch`` twins.
    """
    for item in source:
        if item is PULSE:
            yield PULSE
            continue
        batches = [item]
        for consumer in consumers:
            produced: list = []
            for batch in batches:
                consumer.consume(batch, produced)
            if not produced:
                batches = []
                break
            batches = produced
        yield from batches

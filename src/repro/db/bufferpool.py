"""DBMS buffer pool with semantic pass-through.

The paper instruments PostgreSQL so that buffer-pool requests carry the
semantic information collected in the optimizer/executor down to the
storage manager.  This buffer pool does the same: every page access takes
a :class:`~repro.core.semantics.SemanticInfo`, which is forwarded on a
miss (read path) and remembered per-frame for the writeback path (dirty
evictions classify as updates for regular data, as temp writes for
temporary data — Rules 4 and 3 respectively).

Replacement is LRU.  PostgreSQL uses clock-sweep; at the storage layer the
difference is immaterial for the studied effects (DESIGN.md §6).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.semantics import ContentType, SemanticInfo
from repro.db.errors import StorageError
from repro.db.pages import DbFile, FileKind
from repro.db.storage_manager import StorageManager


@dataclass
class Frame:
    file: DbFile
    pageno: int
    page: object
    dirty: bool = False
    dirty_query: int | None = None


class BufferPool:
    """Fixed-capacity page cache between the executor and storage."""

    def __init__(
        self,
        capacity_pages: int,
        storage_manager: StorageManager,
        read_ahead_pages: int | None = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self.capacity = capacity_pages
        self.storage_manager = storage_manager
        self.read_ahead = (
            read_ahead_pages
            if read_ahead_pages is not None
            else storage_manager.params.read_ahead_pages
        )
        self._frames: OrderedDict[tuple[int, int], Frame] = OrderedDict()
        self.flush_hook = None
        """Optional callable invoked with the dirty frames of each
        writeback batch *before* their writes are submitted.  The
        transaction manager installs the flush-respects-WAL protocol here
        (force the log through the stolen pages' LSNs, then record the
        flushed images in the durable store) — the steal half of
        steal/no-force, DESIGN.md §8."""
        # One-entry memo of the most-recently-touched frame: repeat hits on
        # the same page (index-scan heap fetches, tail-page inserts, batch
        # runs) skip the OrderedDict machinery.  Invariant: when set, the
        # memo key IS the pool's MRU entry, so returning it without a
        # move_to_end leaves the LRU order exactly as it would have been.
        self._memo_key: tuple[int, int] | None = None
        self._memo_page: object | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.read_errors = 0
        """Storage reads that raised a typed
        :class:`~repro.db.errors.StorageError` (corrupt block, failed
        device).  The error always propagates — a failed fetch admits no
        frame and moves no LRU state, so the pool stays consistent and a
        later retry of the same page starts clean."""

    @property
    def _observer(self):
        """The storage system's Observer when attached and enabled."""
        obs = getattr(self.storage_manager.storage, "observer", None)
        return obs if obs is not None and obs.enabled else None

    # --------------------------------------------------------------- reads

    def _fetch(self, file: DbFile, runs: list[tuple[int, int]], sem) -> None:
        """Charge storage I/O for missing page runs, exception-safely.

        Sits directly on the CRC-verified read boundary (DESIGN.md §13):
        the storage stack below either delivers verified blocks or
        raises.  On a raise, nothing has been admitted yet — the caller's
        frames, memo and LRU order are exactly as before the call.
        """
        try:
            self.storage_manager.read_pages_batch(file, runs, sem)
        except StorageError:
            self.read_errors += 1
            obs = self._observer
            if obs is not None:
                obs.on_pool_read_error()
            raise

    def get_page(self, file: DbFile, pageno: int, sem: SemanticInfo):
        """Fetch one page, charging storage I/O on a miss."""
        key = (file.fileid, pageno)
        obs = self._observer
        if key == self._memo_key:
            self.hits += 1
            if obs is not None:
                obs.on_pool_hits(1)
            return self._memo_page
        frame = self._frames.get(key)
        if frame is not None:
            self.hits += 1
            if obs is not None:
                obs.on_pool_hits(1)
            self._frames.move_to_end(key)
            self._memo_key = key
            self._memo_page = frame.page
            return frame.page
        self.misses += 1
        if obs is not None:
            obs.on_pool_misses(1)
        self._fetch(file, [(pageno, 1)], sem)
        page = file.page(pageno)
        self._admit(Frame(file, pageno, page))
        return page

    def get_range(self, file: DbFile, start: int, count: int, sem: SemanticInfo):
        """Yield pages ``[start, start+count)``, batching missing runs.

        Misses within one read-ahead window are fetched with a single
        multi-block request per contiguous missing run, which is how a
        sequential scan turns into few large I/O requests.
        """
        for pages in self.get_range_batches(file, start, count, sem):
            yield from pages

    def get_range_batches(
        self, file: DbFile, start: int, count: int, sem: SemanticInfo
    ):
        """Yield the pages of ``[start, start+count)`` one window at a time.

        Same requests, hit/miss accounting and LRU behaviour as
        :meth:`get_range`, but each read-ahead window's pages come back as
        one list — the vectorized scan path's page source.
        """
        window = max(self.read_ahead, 1)
        end = start + count
        pos = start
        frames = self._frames
        fileid = file.fileid
        while pos < end:
            batch_end = min(pos + window, end)
            pages = self._fault_in_range(file, pos, batch_end, sem)
            if pages is not None:
                # Entirely-missing window: _fault_in_range admitted every
                # page itself (memo already on the last one); re-probing
                # the frame table per page would find each freshly-MRU.
                yield pages
                pos = batch_end
                continue
            pages = []
            key = None
            scan_from = pos
            first = (fileid, pos)
            if first == self._memo_key:
                # Memo serve (same invariant as get_page): at window
                # start the memo key IS the MRU entry, so skipping
                # move_to_end leaves the LRU order exactly as it would
                # have been.  Only the first page qualifies — after any
                # move_to_end below, the memo'd frame is no longer MRU
                # and must take the regular move-to-end path.
                pages.append(self._memo_page)
                key = first
                scan_from = pos + 1
            for pageno in range(scan_from, batch_end):
                key = (fileid, pageno)
                frame = frames.get(key)
                if frame is None:
                    # Evicted by our own read-ahead (pool smaller than the
                    # window): re-read the single page.
                    pages.append(self.get_page(file, pageno, sem))
                    key = None
                else:
                    frames.move_to_end(key)
                    pages.append(frame.page)
            if key is not None:
                self._memo_key = key
                self._memo_page = pages[-1]
            yield pages
            pos = batch_end

    def _fault_in_range(
        self, file: DbFile, start: int, end: int, sem: SemanticInfo
    ) -> list | None:
        """Fault in every missing page of ``[start, end)`` with one dispatch.

        The window's missing runs become one vectored read (statistics
        still count one request per run), and the evictions the new frames
        force are written back as one batched dispatch per victim file —
        the batched read-ahead of DESIGN.md §6.

        Returns the window's pages when the *whole* window was one
        missing run that fits the pool (the cold sequential-scan case):
        every page was just admitted in increasing order, so the caller's
        per-page frame-table probe + move_to_end pass would be a pure
        no-op reordering.  Returns None otherwise — including when the
        window exceeds capacity, where admissions evict one another and
        the caller's re-probe (with its single-page re-reads) is what
        keeps the request stream on the established behaviour.
        """
        runs: list[tuple[int, int]] = []
        run_start: int | None = None
        window_hits = 0
        window_misses = 0
        for pageno in range(start, end):
            missing = (file.fileid, pageno) not in self._frames
            if missing:
                self.misses += 1
                window_misses += 1
                if run_start is None:
                    run_start = pageno
            else:
                self.hits += 1
                window_hits += 1
            if not missing and run_start is not None:
                runs.append((run_start, pageno - run_start))
                run_start = None
        if run_start is not None:
            runs.append((run_start, end - run_start))
        obs = self._observer
        if obs is not None:
            if window_hits:
                obs.on_pool_hits(window_hits)
            if window_misses:
                obs.on_pool_misses(window_misses)
        if not runs:
            return None
        self._fetch(file, runs, sem)
        total = sum(count for _, count in runs)
        self._make_room(total)
        if runs[0] == (start, end - start) and total <= self.capacity:
            pages = []
            for pageno in range(start, end):
                page = file.page(pageno)
                self._admit(Frame(file, pageno, page))
                pages.append(page)
            return pages
        for run_begin, count in runs:
            for pageno in range(run_begin, run_begin + count):
                self._admit(Frame(file, pageno, file.page(pageno)))
        return None

    # --------------------------------------------------------------- writes

    def new_page(self, file: DbFile, page, sem: SemanticInfo) -> int:
        """Allocate a fresh page dirty in the pool (written on eviction)."""
        pageno = file.allocate_page(page)
        self._admit(
            Frame(file, pageno, page, dirty=True, dirty_query=sem.query_id)
        )
        return pageno

    def mark_dirty(self, file: DbFile, pageno: int, sem: SemanticInfo) -> None:
        """Mark an (already resident) page dirty."""
        key = (file.fileid, pageno)
        frame = self._frames.get(key)
        if frame is None:
            # Page was evicted between read and modify; re-admit it.
            self.get_page(file, pageno, sem)
            frame = self._frames[key]
        frame.dirty = True
        frame.dirty_query = sem.query_id

    # ------------------------------------------------------------- lifecycle

    def drop_file(self, file: DbFile) -> int:
        """Discard every frame of a (deleted) file without writeback."""
        keys = [key for key in self._frames if key[0] == file.fileid]
        for key in keys:
            del self._frames[key]
        if self._memo_key is not None and self._memo_key[0] == file.fileid:
            self._memo_key = self._memo_page = None
        return len(keys)

    def flush_all(self) -> int:
        """Write back every dirty frame (checkpoint); returns pages written.

        Dirty frames are grouped per file into batched writes, and the
        scheduler's writeback queue is drained afterwards, so a checkpoint
        leaves no I/O in flight.
        """
        written = self._write_back_batch(
            [frame for frame in self._frames.values() if frame.dirty]
        )
        self.storage_manager.drain()
        return written

    def flush_file(self, file: DbFile) -> int:
        """Write back one file's dirty frames (spill-file generation end)."""
        written = self._write_back_batch(
            [
                frame
                for frame in self._frames.values()
                if frame.dirty and frame.file.fileid == file.fileid
            ]
        )
        self.storage_manager.drain()
        return written

    def clear(self) -> None:
        """Empty the pool (cold-cache experiment resets); flushes first."""
        self.flush_all()
        self._frames.clear()
        self._memo_key = self._memo_page = None

    def discard_all(self) -> int:
        """Drop every frame *without* writeback (crash simulation)."""
        dropped = len(self._frames)
        self._frames.clear()
        self._memo_key = self._memo_page = None
        return dropped

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def dirty_lbns(self) -> set[int]:
        """LBAs whose authoritative copy is a dirty frame in this pool.

        The migration planner excludes them each epoch (DESIGN.md §11):
        their on-storage image is stale, and the fresh image reaches
        storage only through a WAL-ordered flush — migrating the stale
        copy would be wasted work and would race that ordering.  Frames
        whose pages were never written have no LBA yet (``is_mapped``)
        and equally nothing on storage to migrate.
        """
        return {
            frame.file.extent_map.lba_of(frame.pageno)
            for frame in self._frames.values()
            if frame.dirty and frame.file.extent_map.is_mapped(frame.pageno)
        }

    # ------------------------------------------------------------- internals

    def _admit(self, frame: Frame) -> None:
        key = (frame.file.fileid, frame.pageno)
        if key in self._frames:
            # Keep the existing frame's dirty state; refresh recency.
            existing = self._frames[key]
            existing.dirty = existing.dirty or frame.dirty
            self._frames.move_to_end(key)
            self._memo_key = key
            self._memo_page = existing.page
            return
        self._make_room(1)
        self._frames[key] = frame
        self._memo_key = key
        self._memo_page = frame.page

    def _make_room(self, incoming: int) -> None:
        """Evict enough LRU victims for ``incoming`` new frames at once.

        Dirty victims are written back as one batched dispatch per file
        (the batched dirty-page eviction of DESIGN.md §6) instead of one
        request each.
        """
        overflow = len(self._frames) + incoming - self.capacity
        if overflow <= 0:
            return
        self._memo_key = self._memo_page = None
        victims = []
        evicted = 0
        for _ in range(overflow):
            if not self._frames:
                break
            _, victim = self._frames.popitem(last=False)
            evicted += 1
            if victim.dirty:
                victims.append(victim)
        self.evictions += evicted
        if evicted:
            obs = self._observer
            if obs is not None:
                obs.on_pool_evictions(evicted)
        self._write_back_batch(victims)

    def _write_back_batch(self, frames: list[Frame]) -> int:
        """Write back dirty frames, one batched async dispatch per group.

        Dirty-page writeback is background-writer work: it must reach
        storage (and take its place in the cache) but is off the critical
        path of whichever query triggered the eviction.
        """
        if frames and self.flush_hook is not None:
            self.flush_hook(frames)
        groups: dict[tuple, tuple[DbFile, SemanticInfo, list[int]]] = {}
        for frame in frames:
            sem = self._writeback_semantics(frame)
            key = (frame.file.fileid, sem)
            if key not in groups:
                groups[key] = (frame.file, sem, [])
            groups[key][2].append(frame.pageno)
            frame.dirty = False
        for file, sem, pagenos in groups.values():
            self.storage_manager.write_pages_batch(
                file, pagenos, sem, async_hint=True
            )
        return len(frames)

    @staticmethod
    def _writeback_semantics(frame: Frame) -> SemanticInfo:
        file = frame.file
        if file.kind is FileKind.TEMP:
            return SemanticInfo.temp_data(oid=file.oid, query_id=frame.dirty_query)
        content = (
            ContentType.INDEX if file.kind is FileKind.INDEX else ContentType.TABLE
        )
        return SemanticInfo.update(content, oid=file.oid, query_id=frame.dirty_query)

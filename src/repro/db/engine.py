"""The Database facade: DDL, loading, query execution, concurrency.

This is the hStorage-DB "DBMS server": it owns the catalog, buffer pool,
storage manager (with its policy assignment table), temp-file manager and
the Rule-5 registry, and it drives query plans through the executor.

Concurrent workloads (the paper's Section 6.4 throughput test) are
simulated by *cooperative interleaving*: each stream's plan is advanced a
quantum of tuples at a time in round-robin order over one shared storage
system and one shared registry, reproducing both device-level interference
and concurrent policy assignment without OS threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.assignment import PolicyAssignmentTable
from repro.core.levels import compute_effective_levels, iter_nodes
from repro.core.registry import RandomOperatorRef
from repro.db.bufferpool import BufferPool
from repro.db.catalog import Catalog, Index, Relation
from repro.db.errors import ExecutionError
from repro.db.heap import HeapFile
from repro.db.btree import BTree
from repro.db.pages import FileKind
from repro.db.plan import PULSE, ExecutionContext, PlanNode
from repro.db.storage_manager import StorageManager
from repro.db.temp import TempFileManager
from repro.db.tuples import Schema
from repro.sim.params import SimulationParameters
from repro.storage.stats import QueryStats
from repro.storage.system import StorageSystem

PlanBuilder = Callable[["Database"], PlanNode]


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    query_id: int
    label: str
    rows: list[tuple]
    sim_seconds: float
    stats: QueryStats

    @property
    def row_count(self) -> int:
        return len(self.rows)


class QueryExecution:
    """A query being advanced cooperatively (concurrent workloads)."""

    def __init__(
        self,
        db: "Database",
        plan: PlanNode,
        label: str,
        collect: bool,
        snapshot=None,
    ) -> None:
        self.db = db
        self.plan = plan
        self.label = label
        self.collect = collect
        self.query_id = db._next_query_id()
        self.rows: list[tuple] = []
        self.started_at = db.clock.now
        self.finished_at: float | None = None

        # Observability: open this query's trace span (no-op without an
        # enabled observer; hooks never touch the simulation itself).
        obs = getattr(db.storage, "observer", None)
        self._obs = obs if obs is not None and obs.enabled else None
        self.span = (
            self._obs.on_query_start(label, self.query_id)
            if self._obs is not None
            else None
        )

        # MVCC: ``snapshot=True`` pins a fresh begin-timestamp snapshot
        # for the query's whole life; a Snapshot instance is used as-is
        # (caller owns its release); False/None read current state
        # exactly as before.
        self._owns_snapshot = False
        if snapshot is True:
            mgr = db.enable_wal()
            snapshot = mgr.mvcc.take_snapshot()
            self._owns_snapshot = True
        elif not snapshot:
            snapshot = None
        self.snapshot = snapshot

        levels = compute_effective_levels(plan)
        refs: list[RandomOperatorRef] = []
        for node in iter_nodes(plan):
            refs.extend(node.random_refs(levels[id(node)]))
        db.registry.register_query(self.query_id, refs)

        self.ctx = ExecutionContext(
            pool=db.pool,
            temp=db.temp,
            clock=db.clock,
            params=db.params,
            query_id=self.query_id,
            work_mem_rows=db.work_mem_rows,
            levels=levels,
            snapshot=self.snapshot,
            mvcc=db.txn_manager.mvcc if self.snapshot is not None else None,
        )
        # The push stream has the vectorized shape (batches + pulses), so
        # step() flattens both through the same branch.
        executor = db.executor
        self._vectorized = executor != "row"
        if executor == "push":
            from repro.db.push import run_push

            self._iterator = run_push(plan, self.ctx)
        elif executor == "vectorized":
            self._iterator = plan.execute_batch(self.ctx)
        else:
            self._iterator = plan.execute(self.ctx)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def step(self, quantum: int = 64) -> bool:
        """Advance up to ``quantum`` items; returns False once exhausted.

        Items are output rows *or* scheduling pulses emitted inside
        blocking operator phases — both count against the quantum, so
        co-running queries interleave at I/O-ish granularity.  On the
        vectorized path a batch counts as its row count, and batches are
        flattened into the result rows here, at the engine boundary.
        """
        if self.done:
            return False
        # Make this query's span current while its operators run, so I/O
        # and device events recorded below nest under the right query
        # even when several streams interleave cooperatively.
        tracer = self._obs.tracer if self._obs is not None else None
        pushed = tracer is not None and self.span is not None
        if pushed:
            tracer.push(self.span)
        try:
            consumed = 0
            vectorized = self._vectorized
            while consumed < quantum:
                try:
                    item = next(self._iterator)
                except StopIteration:
                    self._finish()
                    return False
                if item is PULSE:
                    consumed += 1
                    continue
                if vectorized:
                    consumed += len(item) or 1
                    if self.collect:
                        self.rows.extend(item)
                else:
                    consumed += 1
                    if self.collect:
                        self.rows.append(item)
            return True
        finally:
            if pushed:
                tracer.pop()

    def run_to_completion(self) -> None:
        while self.step(4096):
            pass

    def _finish(self) -> None:
        self.ctx.flush_cpu()
        if self._owns_snapshot and self.db.txn_manager is not None:
            mvcc = self.db.txn_manager.mvcc
            mvcc.release_snapshot(self.snapshot)
            mvcc.gc()  # versions only this snapshot could see are dead now
        self.db.registry.unregister_query(self.query_id)
        self.db.temp.cleanup_query(self.query_id)
        # Settle this query's in-flight writebacks so per-query statistics
        # and background accounting are complete when the result is read.
        self.db.storage.drain()
        self.finished_at = self.db.clock.now
        if self._obs is not None:
            self._obs.on_query_finish(
                self.span, self.label, self.finished_at - self.started_at
            )

    def result(self) -> QueryResult:
        if not self.done:
            raise ExecutionError(f"query {self.label!r} has not finished")
        return QueryResult(
            query_id=self.query_id,
            label=self.label,
            rows=self.rows,
            sim_seconds=self.finished_at - self.started_at,
            stats=self.db.storage.stats.query(self.query_id),
        )


class Database:
    """A single-node DBMS over one (possibly hybrid) storage system."""

    def __init__(
        self,
        storage: StorageSystem,
        assignment: PolicyAssignmentTable,
        params: SimulationParameters | None = None,
        bufferpool_pages: int = 256,
        work_mem_rows: int = 5000,
        btree_order: int = 128,
        use_trim: bool = True,
        vectorized: bool = True,
        executor: str | None = None,
        placement: str | None = None,
    ) -> None:
        self.storage = storage
        self.assignment = assignment
        self.params = params if params is not None else SimulationParameters()
        self.work_mem_rows = work_mem_rows
        self.btree_order = btree_order
        # ``executor`` supersedes the boolean ``vectorized`` switch:
        # "row" | "vectorized" | "push" (DESIGN.md §12).  When omitted it
        # derives from ``vectorized`` so existing callers are unchanged;
        # ``self.vectorized`` stays consistent either way.
        if executor is None:
            executor = "vectorized" if vectorized else "row"
        if executor not in ("row", "vectorized", "push"):
            raise ValueError(
                f"unknown executor {executor!r}; "
                "expected 'row', 'vectorized' or 'push'"
            )
        self.executor = executor
        self.vectorized = executor != "row"

        self.catalog = Catalog()
        self.registry = assignment.registry
        self.storage_manager = StorageManager(storage, assignment, self.params)
        self.pool = BufferPool(bufferpool_pages, self.storage_manager)
        self.temp = TempFileManager(self.storage_manager, self.pool, use_trim)
        self._query_counter = 0
        self.txn_manager = None

        # Adaptive placement (DESIGN.md §11): the engine lives in the
        # storage system; the DBMS contributes its buffer-pool knowledge
        # (dirty pages must not be migrated — their storage image is
        # stale until a WAL-ordered flush replaces it).
        engine = self.storage_manager.placement
        if placement is None:
            self.placement = (
                engine.mode.value if engine is not None else "semantic"
            )
        else:
            if engine is not None and engine.mode.value != placement:
                raise ValueError(
                    f"database placement {placement!r} does not match the "
                    f"storage system's engine ({engine.mode.value!r})"
                )
            if engine is None and placement != "semantic":
                raise ValueError(
                    f"placement {placement!r} needs a storage system built "
                    "with a PlacementEngine (see harness.configs."
                    "build_storage); this one has none"
                )
            self.placement = placement
        self.storage_manager.wire_migration_exclusions(self.pool.dirty_lbns)

    # ------------------------------------------------------------------ DDL

    def create_table(self, name: str, schema: Schema) -> Relation:
        oid = self.catalog.allocate_oid()
        file = self.storage_manager.create_file(FileKind.HEAP, oid=oid)
        heap = HeapFile(
            file, schema, schema.rows_per_page(self.params.block_size)
        )
        relation = Relation(name=name, oid=oid, schema=schema, heap=heap)
        self.catalog.add_relation(relation)
        return relation

    def create_index(self, name: str, table_name: str, column: str) -> Index:
        relation = self.catalog.relation(table_name)
        key_pos = relation.schema.idx(column)
        oid = self.catalog.allocate_oid()
        file = self.storage_manager.create_file(FileKind.INDEX, oid=oid)
        btree = BTree(file, order=self.btree_order)
        index = Index(
            name=name,
            oid=oid,
            table=relation,
            column=column,
            key_pos=key_pos,
            btree=btree,
        )
        # Build bottom-up from the existing heap contents (out of band).
        pairs = (
            (row[key_pos], (pageno, slot))
            for pageno, page in enumerate(relation.heap.file.pages)
            for slot, row in page.live_rows()
        )
        btree.bulk_load(pairs)
        self.catalog.add_index(index)
        return index

    def bulk_load(self, table_name: str, rows: Iterable[tuple]) -> int:
        """Load rows outside measurement (restores a prepared image)."""
        return self.catalog.relation(table_name).heap.bulk_load(rows)

    # --------------------------------------------------------- transactions

    def enable_wal(self):
        """Attach the transaction subsystem (idempotent).

        Creates the write-ahead log and the :class:`TransactionManager`,
        installs the flush-respects-WAL hook on the buffer pool, and
        writes the baseline checkpoint that anchors recovery.  Call it
        *after* loading: bulk loads are unlogged, so recoverable history
        starts at this checkpoint's image of the database.  Query-only
        databases never call this, so their request streams are untouched.
        """
        if self.txn_manager is None:
            from repro.db.txn.manager import TransactionManager

            self.txn_manager = TransactionManager(self)
        return self.txn_manager

    def begin(self):
        """Start a transaction (enables the WAL subsystem on first use).

        The returned :class:`~repro.db.txn.manager.Transaction` is a
        context manager: commit on success, abort on exception.  Heap and
        B-tree mutations that are handed the transaction are WAL-logged;
        mutations without one stay unlogged (autocommit-style legacy
        paths keep their exact request streams).
        """
        return self.enable_wal().begin()

    def commit(self, txn) -> None:
        """Commit ``txn`` (forces the log through its commit record)."""
        txn.commit()

    def abort(self, txn) -> None:
        """Roll ``txn`` back (undo through the pool, CLR-logged)."""
        txn.abort()

    def checkpoint(self):
        """Write a WAL checkpoint (begin/end of OLTP measurement windows)."""
        if self.txn_manager is None:
            # Attaching the subsystem writes the baseline checkpoint —
            # that *is* the requested checkpoint, not a prelude to one.
            self.enable_wal()
            return self.txn_manager.wal.records[-1]
        return self.txn_manager.checkpoint()

    # -------------------------------------------------------------- queries

    def _next_query_id(self) -> int:
        self._query_counter += 1
        return self._query_counter

    def build_plan(self, plan_or_builder) -> PlanNode:
        if isinstance(plan_or_builder, PlanNode):
            return plan_or_builder
        plan = plan_or_builder(self)
        if not isinstance(plan, PlanNode):
            raise ExecutionError("plan builder did not return a PlanNode")
        return plan

    def start_query(
        self,
        plan_or_builder,
        label: str = "query",
        collect: bool = True,
        snapshot=None,
    ) -> QueryExecution:
        plan = self.build_plan(plan_or_builder)
        return QueryExecution(self, plan, label, collect, snapshot=snapshot)

    def run_query(
        self,
        plan_or_builder,
        label: str = "query",
        collect: bool = True,
        snapshot=None,
    ) -> QueryResult:
        """Run one query to completion; returns rows, simulated time, stats.

        ``snapshot=True`` executes the query against an MVCC snapshot
        taken at start (requires the WAL subsystem; DESIGN.md §10)."""
        execution = self.start_query(plan_or_builder, label, collect, snapshot)
        execution.run_to_completion()
        return execution.result()

    def run_concurrent(
        self,
        workloads: list[tuple],
        quantum: int = 64,
        collect: bool = False,
    ) -> list[QueryResult]:
        """Co-run several queries with round-robin tuple quanta.

        Each workload is ``(label, builder)`` or ``(label, builder,
        snapshot)`` — the optional third element is passed to
        :meth:`start_query`, so individual streams can read under an
        MVCC snapshot while others (e.g. an OLTP driver) run without.
        """
        executions = [
            self.start_query(
                item[1], item[0], collect, item[2] if len(item) > 2 else None
            )
            for item in workloads
        ]
        active = list(executions)
        while active:
            active = [ex for ex in active if ex.step(quantum)]
        return [ex.result() for ex in executions]

    def explain_analyze(
        self, plan_or_builder, label: str = "query", snapshot=None
    ):
        """Run one query with operator-level profiling (DESIGN.md §14).

        Returns a :class:`~repro.obs.profile.QueryProfile`: per-node rows
        in/out, batch counts, simulated CPU vs I/O self-time and buffer
        pool hit/miss counters, with node self-times summing exactly to
        the query's simulated elapsed time.  The profiled run is
        bit-identical to a plain :meth:`run_query` of the same plan.
        """
        from repro.obs.profile import profile_query

        return profile_query(self, plan_or_builder, label, snapshot=snapshot)

    # ---------------------------------------------------------------- admin

    @property
    def clock(self):
        return self.storage.clock

    @property
    def observer(self):
        """The storage system's attached Observer, if any."""
        return getattr(self.storage, "observer", None)

    def reset_measurements(self) -> None:
        """Zero clock and statistics (after loading, before an experiment)."""
        self.storage.drain()
        self.clock.reset()
        self.storage.stats.reset()
        if self.storage.placement is not None:
            # Load traffic must not seed the heat map; epochs re-anchor
            # at the (now zeroed) simulated clock.
            self.storage.placement.reset()

    def database_pages(self) -> int:
        """Total heap + index pages (for sizing caches in experiments)."""
        return self.catalog.total_heap_pages() + self.catalog.total_index_pages()

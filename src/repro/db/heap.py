"""Heap files: row storage with sequential scan and random fetch.

Mutations accept an optional transaction; when one is passed, the change
is WAL-logged (a physiological record carrying the rid and row images)
before control returns — the redo/undo unit of ARIES-lite recovery
(DESIGN.md §8).  Without a transaction the write is unlogged, exactly as
before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.semantics import SemanticInfo
from repro.db.bufferpool import BufferPool
from repro.db.errors import StorageLayoutError
from repro.db.pages import DbFile, HeapPage
from repro.db.tuples import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.txn.manager import Transaction
    from repro.db.txn.mvcc import MVCCManager, Snapshot

Rid = tuple[int, int]
"""Row identifier: (page number, slot)."""


def iter_page_row_batches(
    pool: BufferPool, file: DbFile, sem: SemanticInfo
) -> Iterator[list]:
    """Scan a page file yielding one batch (list of live rows) per page.

    The vectorized scan loop shared by heap files and spill files: pages
    arrive one read-ahead window at a time (same requests, in the same
    order, as a row-at-a-time `get_range` scan), each page's live rows
    come back as a fresh list, and all-tombstone pages are skipped.
    """
    npages = file.num_pages
    if npages == 0:
        return
    for pages in pool.get_range_batches(file, 0, npages, sem):
        for page in pages:
            batch = page.live_row_list()
            if batch:
                yield batch


class HeapFile:
    """Rows of one relation, packed into fixed-capacity heap pages."""

    def __init__(self, file: DbFile, schema: Schema, rows_per_page: int) -> None:
        if rows_per_page < 1:
            raise StorageLayoutError("rows_per_page must be >= 1")
        self.file = file
        self.schema = schema
        self.rows_per_page = rows_per_page
        self.row_count = 0

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    # ------------------------------------------------------------- bulk load

    def bulk_load(self, rows: Iterable[tuple]) -> int:
        """Append rows directly into page storage, outside measurement.

        Loading models restoring a prepared database image: it does not go
        through the buffer pool and charges no simulated I/O (the paper
        measures query executions on an already-loaded database).
        """
        page: HeapPage | None = None
        loaded = 0
        for row in rows:
            if page is None or page.full:
                page = HeapPage(self.rows_per_page)
                self.file.allocate_page(page)
            page.append(row)
            loaded += 1
        self.row_count += loaded
        return loaded

    # ----------------------------------------------------------- query paths

    def scan(
        self, pool: BufferPool, sem: SemanticInfo
    ) -> Iterator[tuple[Rid, tuple]]:
        """Full sequential scan yielding (rid, row)."""
        npages = self.num_pages
        if npages == 0:
            return
        for pageno, page in enumerate(pool.get_range(self.file, 0, npages, sem)):
            for slot, row in page.live_rows():
                yield (pageno, slot), row

    def scan_batches(self, pool: BufferPool, sem: SemanticInfo) -> Iterator[list]:
        """Sequential scan yielding one batch (list of live rows) per page.

        Same page requests in the same order as :meth:`scan` — whole-page
        row batches come straight off ``HeapPage.rows`` (copied, filtered
        only when the page has tombstones) without per-row generator hops.
        """
        yield from iter_page_row_batches(pool, self.file, sem)

    def scan_window_batches(
        self, pool: BufferPool, sem: SemanticInfo
    ) -> Iterator[list]:
        """Sequential scan yielding one *morsel* per read-ahead window.

        The push executor's unit of work (DESIGN.md §12): all live rows
        of one ``BufferPool`` read-ahead window, concatenated into a
        single fresh list.  Page requests are identical (same windows,
        same faults, same order) to :meth:`scan_batches`; only the batch
        boundary moves from page to window granularity — I/O happens
        exclusively at window faults, so regrouping within a window is
        invisible to the request stream.  Windows whose pages are all
        tombstones yield an empty list.
        """
        npages = self.num_pages
        if npages == 0:
            return
        for pages in pool.get_range_batches(self.file, 0, npages, sem):
            rows: list = []
            for page in pages:
                if page.num_deleted:
                    rows += [row for row in page.rows if row is not None]
                else:
                    rows += page.rows
            yield rows

    def scan_window_columns(
        self, pool: BufferPool, sem: SemanticInfo, positions: tuple[int, ...]
    ) -> Iterator[tuple[list, list[list]]]:
        """Columnar morsel scan: ``(rows, columns)`` per read-ahead window.

        ``columns`` holds one value list per requested attribute position
        (the fused kernels' column-at-a-time operands); ``rows`` is the
        same morsel as :meth:`scan_window_batches` — kept alongside so
        spill paths that need whole tuples (grace partition routing) can
        reach them without re-materialising.
        """
        for rows in self.scan_window_batches(pool, sem):
            yield rows, [[row[pos] for row in rows] for pos in positions]

    def fetch(self, pool: BufferPool, rid: Rid, sem: SemanticInfo):
        """Random row fetch by rid; None if the slot was deleted."""
        pageno, slot = rid
        page = pool.get_page(self.file, pageno, sem)
        return page.get(slot)

    # ------------------------------------------------------- snapshot reads

    def fetch_visible(
        self,
        pool: BufferPool,
        rid: Rid,
        sem: SemanticInfo,
        snapshot: "Snapshot",
        mvcc: "MVCCManager",
    ):
        """The row version visible under ``snapshot`` (MVCC, DESIGN.md §10).

        Issues exactly the page read :meth:`fetch` would; version
        resolution is in-memory.  Returns None when the row is invisible
        at the snapshot (deleted before it, or born after it).
        """
        pageno, slot = rid
        page = pool.get_page(self.file, pageno, sem)
        return mvcc.resolve(self.file.fileid, rid, page.get(slot), snapshot)

    def scan_snapshot(
        self,
        pool: BufferPool,
        sem: SemanticInfo,
        snapshot: "Snapshot",
        mvcc: "MVCCManager",
    ) -> Iterator[list]:
        """Sequential scan of the versions visible under ``snapshot``.

        Page requests are identical (same order, same read-ahead windows)
        to :meth:`scan_batches`; each page's slots are resolved against
        the version chains, so the scan sees a transaction-consistent
        image no matter which writers commit mid-flight.  Files no
        transaction ever versioned take the plain fast path per page.
        """
        npages = self.num_pages
        if npages == 0:
            return
        fileid = self.file.fileid
        pageno = 0
        for pages in pool.get_range_batches(self.file, 0, npages, sem):
            for page in pages:
                if mvcc.file_tracked(fileid):
                    batch = mvcc.visible_page_rows(
                        fileid, pageno, page.rows, snapshot
                    )
                else:
                    batch = page.live_row_list()
                pageno += 1
                if batch:
                    yield batch

    # -------------------------------------------------------------- mutation

    def insert(
        self,
        pool: BufferPool,
        row: tuple,
        sem: SemanticInfo,
        txn: "Transaction | None" = None,
    ) -> Rid:
        """Append one row through the buffer pool (update streams)."""
        rid = self._place(pool, row, sem)
        if txn is not None:
            txn.manager.log_heap_insert(txn, self, rid, row)
        return rid

    def _place(self, pool: BufferPool, row: tuple, sem: SemanticInfo) -> Rid:
        if self.num_pages:
            pageno = self.num_pages - 1
            page = pool.get_page(self.file, pageno, sem)
            if not page.full:
                slot = page.append(row)
                pool.mark_dirty(self.file, pageno, sem)
                self.row_count += 1
                return (pageno, slot)
        page = HeapPage(self.rows_per_page)
        pageno = pool.new_page(self.file, page, sem)
        slot = page.append(row)
        self.row_count += 1
        return (pageno, slot)

    def update(
        self,
        pool: BufferPool,
        rid: Rid,
        new_row: tuple,
        sem: SemanticInfo,
        txn: "Transaction | None" = None,
    ) -> tuple | None:
        """Replace the row at ``rid`` in place; returns the old row.

        Returns ``None`` (and changes nothing) if the slot holds no live
        row.  The OLTP point-update path: one page read, one in-place
        write, one ``HEAP_UPDATE`` record carrying both images.
        """
        pageno, slot = rid
        page = pool.get_page(self.file, pageno, sem)
        old_row = page.get(slot)
        if old_row is None:
            return None
        page.rows[slot] = new_row
        pool.mark_dirty(self.file, pageno, sem)
        if txn is not None:
            txn.manager.log_heap_update(txn, self, rid, old_row, new_row)
        return old_row

    def delete(
        self,
        pool: BufferPool,
        rid: Rid,
        sem: SemanticInfo,
        txn: "Transaction | None" = None,
    ) -> bool:
        """Tombstone one row (RF2); True if it existed."""
        pageno, slot = rid
        page = pool.get_page(self.file, pageno, sem)
        old_row = page.get(slot)
        deleted = page.delete(slot)
        if deleted:
            pool.mark_dirty(self.file, pageno, sem)
            self.row_count -= 1
            if txn is not None:
                txn.manager.log_heap_delete(txn, self, rid, old_row)
        return deleted

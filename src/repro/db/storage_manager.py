"""The DBMS storage manager, extended with the policy assignment table.

In a stock DBMS this layer strips all semantics from a page request and
emits bare block I/O.  In hStorage-DB it consults the
:class:`~repro.core.assignment.PolicyAssignmentTable` and embeds the
resulting QoS policy (plus the request-type classification used by the
statistics layer) into each request before submitting it to the storage
system — Section 2's architecture, faithfully.

This is also the DBMS side of the *integrity boundary* (DESIGN.md §13):
every block image crossing it is framed with a per-block CRC
(:mod:`repro.storage.integrity`) and verified on every read by the tier
chain below.  Reads therefore either return verified data or raise a
typed :class:`~repro.db.errors.StorageError` — transient faults are
retried below this boundary with deterministic backoff, corruption is
repaired from the authoritative copy where one exists, and only
unrecoverable conditions (data loss, backing-store failure) surface
here, loudly.
"""

from __future__ import annotations

from repro.core.assignment import PolicyAssignmentTable
from repro.core.semantics import SemanticInfo
from repro.db.pages import DbFile, FileKind
from repro.sim.params import SimulationParameters
from repro.storage.block import ExtentAllocator, ExtentMap
from repro.storage.requests import IOOp, IORequest
from repro.storage.system import StorageSystem


class StorageManager:
    """Translates page I/O into classified block I/O."""

    def __init__(
        self,
        storage: StorageSystem,
        assignment: PolicyAssignmentTable,
        params: SimulationParameters,
        extent_allocator: ExtentAllocator | None = None,
    ) -> None:
        self.storage = storage
        self.assignment = assignment
        self.params = params
        self.allocator = (
            extent_allocator if extent_allocator is not None else ExtentAllocator()
        )
        self._next_fileid = 0

    # ---------------------------------------------------------- placement

    @property
    def placement(self):
        """The storage system's adaptive-placement engine (or ``None``).

        The storage manager is where the DBMS and the placement
        subsystem meet: the engine lives below (attached to the
        :class:`~repro.storage.system.StorageSystem`), but the DBMS
        wires its buffer-pool knowledge — which LBAs hold dirty pages —
        into the migration planner through here (DESIGN.md §11).
        """
        return getattr(self.storage, "placement", None)

    def wire_migration_exclusions(self, provider) -> None:
        """Install the planner's per-epoch exclusion source (dirty LBAs)."""
        engine = self.placement
        if engine is not None:
            engine.exclude_provider = provider

    # ----------------------------------------------------------- resilience

    def recovery_summary(self) -> dict:
        """The storage stack's fault-recovery counters (DESIGN.md §13).

        Surfaces the tier chain's :class:`~repro.storage.faults.RecoveryStats`
        (retries, backoff seconds, corruption detections/repairs, tier
        failovers) plus the scrubber's audit counters when one is
        attached, so harnesses and operators read the whole resilience
        story through the DBMS boundary instead of reaching into devices.
        """
        summary: dict = {}
        recovery = getattr(self.storage.backend, "recovery", None)
        if recovery is not None:
            summary["recovery"] = recovery.as_dict()
            observer = getattr(self.storage, "observer", None)
            if observer is not None and observer.enabled:
                # Mirror the counters into registry gauges so `repro
                # metrics` shows per-tier retry counts alongside the
                # latency histograms.
                observer.publish_recovery(recovery)
        scrubber = getattr(self.storage, "scrubber", None)
        if scrubber is not None:
            summary["scrubber"] = scrubber.summary()
        faults = getattr(self.storage, "faults", None)
        if faults is not None:
            summary["faults"] = faults.summary()
        return summary

    # ------------------------------------------------------------- file mgmt

    TEMP_CHUNK_PAGES = 64
    """Extent chunk for temp files: small, so TRIM footprints stay tight."""

    def create_file(self, kind: FileKind, oid: int | None = None) -> DbFile:
        fileid = self._next_fileid
        self._next_fileid += 1
        chunk = self.TEMP_CHUNK_PAGES if kind is FileKind.TEMP else None
        return DbFile(
            fileid, kind, ExtentMap(self.allocator, chunk_pages=chunk), oid=oid
        )

    # ------------------------------------------------------------------ I/O

    def read_pages(
        self, file: DbFile, pageno: int, count: int, sem: SemanticInfo
    ) -> None:
        """Charge the I/O for reading ``count`` pages starting at ``pageno``.

        One request per LBA-contiguous run (runs split only at extent
        boundaries), so a sequential scan issues few large requests while
        random point reads issue single-block requests — the distinction
        behind Figure 4a (requests) vs Figure 4b (blocks).
        """
        self.read_pages_batch(file, [(pageno, count)], sem)

    def read_pages_batch(
        self,
        file: DbFile,
        page_runs: list[tuple[int, int]],
        sem: SemanticInfo,
    ) -> None:
        """Read several ``(pageno, count)`` runs in one scheduler dispatch.

        The runs become one vectored request: statistics still count one
        request per LBA-contiguous run, but the scheduler dispatches the
        whole vector at once — the buffer pool's read-ahead window costs a
        single dispatch however the window fragments.
        """
        segments = [
            segment
            for pageno, count in page_runs
            for segment in file.extent_map.contiguous_run(pageno, count)
        ]
        self._submit_vector(segments, IOOp.READ, sem, file)

    def write_page(
        self,
        file: DbFile,
        pageno: int,
        sem: SemanticInfo,
        async_hint: bool = False,
    ) -> None:
        """Charge the I/O for writing one page."""
        self._submit(
            file.lba_of(pageno), 1, IOOp.WRITE, sem, file, async_hint=async_hint
        )

    def write_pages_batch(
        self,
        file: DbFile,
        pagenos: list[int],
        sem: SemanticInfo,
        async_hint: bool = True,
    ) -> None:
        """Write a set of pages of one file in one scheduler dispatch.

        Used by batched dirty-page eviction and spill-file flushes.  One
        segment per page, matching the seed's one write request per
        evicted page in the statistics (Figure 4a accounting); adjacent
        pages still coalesce into longer runs at dispatch time, inside
        the scheduler.
        """
        segments = [
            segment
            for pageno in sorted(set(pagenos))
            for segment in file.extent_map.contiguous_run(pageno, 1)
        ]
        self._submit_vector(
            segments, IOOp.WRITE, sem, file, async_hint=async_hint
        )

    def drain(self) -> None:
        """Flush the storage scheduler's writeback queue."""
        self.storage.drain()

    def trim_file(self, file: DbFile, sem: SemanticInfo) -> None:
        """Issue TRIM over the file's entire LBA footprint (EXT4-style)."""
        for extent in file.extent_map.extents:
            self._submit(extent.start, extent.length, IOOp.TRIM, sem, file)

    def evict_scan_file(self, file: DbFile, sem: SemanticInfo) -> None:
        """Legacy-FS TRIM workaround (Section 4.2.3): sequentially re-read
        the file with the "non-caching and eviction" priority so the cache
        demotes its blocks."""
        for extent in file.extent_map.extents:
            self._submit(extent.start, extent.length, IOOp.READ, sem, file)

    def _submit(
        self,
        lba: int,
        nblocks: int,
        op: IOOp,
        sem: SemanticInfo,
        file: DbFile,
        async_hint: bool = False,
    ) -> None:
        policy, rtype = self.assignment.assign(sem, op)
        self.storage.submit(
            IORequest(
                lba=lba,
                nblocks=nblocks,
                op=op,
                policy=policy,
                rtype=rtype,
                query_id=sem.query_id,
                oid=sem.oid if sem.oid is not None else file.oid,
                async_hint=async_hint,
            )
        )

    def _submit_vector(
        self,
        segments: list[tuple[int, int]],
        op: IOOp,
        sem: SemanticInfo,
        file: DbFile,
        async_hint: bool = False,
    ) -> None:
        if not segments:
            return
        policy, rtype = self.assignment.assign(sem, op)
        self.storage.submit(
            IORequest.vectored(
                segments,
                op,
                policy=policy,
                rtype=rtype,
                query_id=sem.query_id,
                oid=sem.oid if sem.oid is not None else file.oid,
                async_hint=async_hint,
            )
        )

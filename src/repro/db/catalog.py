"""Catalog: relations, indexes, object ids."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.btree import BTree
from repro.db.errors import CatalogError
from repro.db.heap import HeapFile
from repro.db.tuples import Schema


@dataclass
class Relation:
    """A regular table."""

    name: str
    oid: int
    schema: Schema
    heap: HeapFile
    indexes: list["Index"] = field(default_factory=list)

    def cols(self) -> dict[str, int]:
        """Column-name to tuple-position map for plan builders."""
        return {c.name: i for i, c in enumerate(self.schema.columns)}

    @property
    def row_count(self) -> int:
        return self.heap.row_count

    def index_on(self, column: str) -> "Index":
        for index in self.indexes:
            if index.column == column:
                return index
        raise CatalogError(f"{self.name} has no index on {column!r}")


@dataclass
class Index:
    """A B+tree index over one column of a relation."""

    name: str
    oid: int
    table: Relation
    column: str
    key_pos: int
    btree: BTree


class Catalog:
    """Name -> object resolution plus oid allocation."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._indexes: dict[str, Index] = {}
        self._next_oid = 1000  # user objects start at 1000, PostgreSQL-style

    def allocate_oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def add_relation(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise CatalogError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation

    def add_index(self, index: Index) -> None:
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self._indexes[index.name] = index
        index.table.indexes.append(index)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"no relation named {name!r}") from None

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index named {name!r}") from None

    @property
    def relations(self) -> list[Relation]:
        return list(self._relations.values())

    @property
    def indexes(self) -> list[Index]:
        return list(self._indexes.values())

    def total_heap_pages(self) -> int:
        return sum(rel.heap.num_pages for rel in self.relations)

    def total_index_pages(self) -> int:
        return sum(ix.btree.file.num_pages for ix in self.indexes)

"""Fused scan→filter→aggregate kernels for the push executor (DESIGN.md §12).

When a plan's lower pipeline is an aggregate directly over a sequential
scan — the Q1 and Q6 shape — and the nodes carry declarative mirrors of
their row lambdas (:attr:`SeqScan.pred_cols`, :attr:`HashAggregate.
group_cols`, :attr:`~repro.db.exprs.AggSpec.col_expr`), the push executor
replaces the whole pipeline segment with one *generated* kernel:

* the scan feeds whole morsels (read-ahead windows) via
  :meth:`~repro.db.heap.HeapFile.scan_window_columns`, extracting value
  arrays for exactly the columns the predicate touches;
* the predicate is compiled into a single list comprehension building the
  morsel's selection vector column-at-a-time over those arrays;
* grouping and accumulator updates are specialized Python source reading
  the surviving row tuples directly (``r = rows[i]``) — measured faster
  than extracting every referenced column, since the selection vector has
  already shrunk the row set;
* aggregates that accumulate the same state share slots: ``sum(e)`` and
  ``avg(e)`` of the identical expression both advance one
  ``(total, count)`` pair, ``count(*)`` keeps one counter
  (:func:`_slot_layout`).

Bit-identity with the row/vectorized paths is structural, not tested-in:

* **Requests** — the kernel reads through the same
  ``scan_window_columns`` windows the buffer pool serves to the other
  modes, so page faults are identical; spilled rows route with the same
  ``hash(key) % SPILL_PARTITIONS`` at the same per-row boundary, so temp
  I/O is identical.
* **CPU** — per window the kernel charges ``len(rows)`` (scan) plus
  ``len(sel)`` (aggregate): exactly the per-page totals the vectorized
  operators charge between the same two window faults, and
  :meth:`ExecutionContext.cpu_tick`'s fixed 512-tuple flushing makes the
  call grouping invisible.
* **Floats** — generated accumulator updates run sequentially in row
  arrival order with the same operand order as the row lambdas, and the
  same ``None`` handling as :class:`~repro.db.exprs._Acc`.  Slot sharing
  is safe because the deduplicated accumulators would have executed the
  identical operation sequence slot by slot.

Kernel *code objects* are cached by generated source; constants bind per
query through ``_K<n>`` namespace slots (never ``repr``'d).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.semantics import SemanticInfo
from repro.db.columnar import ROW_REF
from repro.db.executor.agg import HashAggregate, StreamAggregate
from repro.db.executor.join import SPILL_PARTITIONS, _new_partitions
from repro.db.executor.scan import SeqScan
from repro.db.plan import PULSE, ExecutionContext, chunk_rows

_CODE_CACHE: dict[str, object] = {}


def match(node, ctx: ExecutionContext):
    """Return a fused batch stream for a fusable plan segment, else None.

    Exact-type matches only: subclasses may override behaviour the
    generated code would silently skip.  Snapshot scans resolve row
    versions page-at-a-time and never fuse.
    """
    if ctx.snapshot is not None and ctx.mvcc is not None:
        return None
    if type(node) is HashAggregate:
        return _match_hash_aggregate(node, ctx)
    if type(node) is StreamAggregate:
        return _match_stream_aggregate(node, ctx)
    return None


def _fusable_scan(node) -> SeqScan | None:
    scan = node.children[0]
    if type(scan) is not SeqScan or scan.project is not None:
        return None
    if scan.pred is not None and scan.pred_cols is None:
        return None
    return scan


def _fusable_aggs(specs) -> bool:
    return all(
        spec.col_expr is not None
        or (spec.kind == "count" and spec.value is None)
        for spec in specs
    )


def _match_hash_aggregate(node: HashAggregate, ctx: ExecutionContext):
    if node.group_cols is None or not node.group_cols:
        return None
    scan = _fusable_scan(node)
    if scan is None or not _fusable_aggs(node.aggs):
        return None
    source, params, positions, init, offsets = _hash_aggregate_source(
        scan.pred_cols if scan.pred is not None else None,
        node.group_cols,
        node.aggs,
    )
    kernel = _bind(source, params, init)
    return _hash_aggregate_stream(
        node, scan, ctx, kernel, positions, offsets
    )


def _match_stream_aggregate(node: StreamAggregate, ctx: ExecutionContext):
    if node.group_key is not None:
        return None
    scan = _fusable_scan(node)
    if scan is None or not node.aggs or not _fusable_aggs(node.aggs):
        return None
    source, params, positions, offsets = _scalar_aggregate_source(
        scan.pred_cols if scan.pred is not None else None, node.aggs
    )
    kernel = _bind(source, params, None)
    return _scalar_aggregate_stream(
        node, scan, ctx, kernel, positions, offsets
    )


# ----------------------------------------------------------------- runtime


def _windows(scan: SeqScan, ctx: ExecutionContext, positions):
    sem = SemanticInfo.table_scan(scan.relation.oid, query_id=ctx.query_id)
    return scan.relation.heap.scan_window_columns(ctx.pool, sem, positions)


def _hash_aggregate_stream(
    node: HashAggregate, scan: SeqScan, ctx, kernel, positions, offsets
) -> Iterator:
    groups: dict = {}
    partitions = yield from kernel(
        ctx, _windows(scan, ctx, positions), groups
    )
    specs, project, having = node.aggs, node.project, node.having

    def emit():
        for key, acc in groups.items():
            out = project(key, _finalize(specs, offsets, acc))
            if having is not None and not having(out):
                continue
            yield out

    yield from chunk_rows(emit())
    if partitions is not None:
        for part in partitions:
            part.finish_writing()
        for part in partitions:
            yield from node._aggregate_batches(ctx, part.read_batches())
            part.delete()


def _scalar_aggregate_stream(
    node: StreamAggregate, scan: SeqScan, ctx, kernel, positions, offsets
) -> Iterator:
    seen, acc = yield from kernel(ctx, _windows(scan, ctx, positions))
    if seen:
        yield [_finalize(node.aggs, offsets, acc)]


def _finalize(specs, offsets, acc) -> tuple:
    """Results tuple from a flat slot list — same math as ``_Acc.result``.

    ``offsets[k]`` is spec ``k``'s first slot in the deduplicated layout;
    sum/avg read their shared ``(total, count)`` pair from it.
    """
    out = []
    for spec, off in zip(specs, offsets):
        kind = spec.kind
        if kind == "sum":
            out.append(acc[off] if acc[off + 1] else None)
        elif kind == "avg":
            count = acc[off + 1]
            out.append(acc[off] / count if count else None)
        else:  # count / min / max keep their answer in one slot
            out.append(acc[off])
    return tuple(out)


def _bind(source: str, params: list, init):
    """Compile (cached by source) and bind one query's constants."""
    code = _CODE_CACHE.get(source)
    if code is None:
        code = _CODE_CACHE[source] = compile(source, "<fused-kernel>", "exec")
    namespace: dict = {
        "PULSE": PULSE,
        "_new_parts": _new_partitions,
        "_NPART": SPILL_PARTITIONS,
        "_INIT": init,
    }
    for n, value in enumerate(params):
        namespace[f"_K{n}"] = value
    exec(code, namespace)
    return namespace["_fused"]


# ----------------------------------------------------------------- codegen


def _render(pred, specs):
    """Shared source fragments.

    The predicate renders against extracted column arrays (it touches
    every row, so column-at-a-time pays off); aggregate expressions
    render against the current row tuple ``r`` (they only touch
    selected rows).  ``positions`` is therefore the predicate's column
    set alone — the only extraction the kernel needs.
    """
    params: list = []
    pred_src = pred.source(params) if pred is not None else None
    expr_srcs = [
        spec.col_expr.source(params, ROW_REF)
        if spec.col_expr is not None
        else None
        for spec in specs
    ]
    positions = tuple(sorted(pred.columns())) if pred is not None else ()
    return params, pred_src, expr_srcs, positions


def _slot_layout(specs, expr_srcs):
    """Deduplicated accumulator layout.

    ``sum(e)`` and ``avg(e)`` of the identical expression source advance
    the identical ``(total, count)`` pair, so they share slots;
    ``count(*)`` keeps a single counter; ``count``/``min``/``max``
    dedupe per expression (min and max never share — they track
    different extremes).  Returns the slot init tuple, each spec's slot
    offset, and the unique update entries ``(slot-class, expr-source,
    offset)`` in first-appearance order.
    """
    init: list = []
    offsets: list[int] = []
    entries: list[tuple[str, str | None, int]] = []
    index: dict = {}
    for spec, src in zip(specs, expr_srcs):
        kind = spec.kind
        cls = "sumavg" if kind in ("sum", "avg") else kind
        off = index.get((cls, src))
        if off is None:
            off = index[(cls, src)] = len(init)
            entries.append((cls, src, off))
            if cls == "sumavg":
                init += [0.0, 0]
            elif cls == "count":
                init.append(0)
            else:
                init.append(None)
        offsets.append(off)
    return tuple(init), tuple(offsets), entries


def _window_prelude(lines, positions, pred_src) -> None:
    lines += [
        "    for rows, cols in windows:",
        "        n = len(rows)",
        "        tick(n)",
    ]
    for j, pos in enumerate(positions):
        lines.append(f"        c{pos} = cols[{j}]")
    if pred_src is not None:
        lines.append(f"        sel = [i for i in range(n) if {pred_src}]")
    else:
        lines.append("        sel = range(n)")
    lines.append("        tick(len(sel))")


def _update_lines(entries, indent: str, ref) -> list[str]:
    """Accumulator-update source mirroring ``_Acc.add`` entry by entry."""
    lines: list[str] = []
    for cls, src, off in entries:
        if src is None:  # count(*)
            lines.append(f"{indent}{ref(off)} += 1")
            continue
        lines.append(f"{indent}v = {src}")
        if cls == "sumavg":
            lines += [
                f"{indent}if v is not None:",
                f"{indent}    {ref(off)} += v",
                f"{indent}    {ref(off + 1)} += 1",
            ]
        elif cls == "count":
            lines += [
                f"{indent}if v is not None:",
                f"{indent}    {ref(off)} += 1",
            ]
        else:
            op = "<" if cls == "min" else ">"
            best = ref(off)
            lines += [
                f"{indent}if v is not None and "
                f"({best} is None or v {op} {best}):",
                f"{indent}    {best} = v",
            ]
    return lines


def _hash_aggregate_source(pred, group_cols, specs):
    params, pred_src, expr_srcs, positions = _render(pred, specs)
    init, offsets, entries = _slot_layout(specs, expr_srcs)
    if len(group_cols) > 1:
        key_src = "(" + ", ".join(f"r[{p}]" for p in group_cols) + ")"
    else:
        key_src = f"r[{group_cols[0]}]"
    lines = [
        "def _fused(ctx, windows, groups):",
        "    tick = ctx.cpu_tick",
        "    work_mem = ctx.work_mem_rows",
        "    get = groups.get",
        "    parts = None",
    ]
    _window_prelude(lines, positions, pred_src)
    lines += [
        "        for i in sel:",
        "            r = rows[i]",
        f"            key = {key_src}",
        "            acc = get(key)",
        "            if acc is None:",
        "                if parts is None and len(groups) >= work_mem:",
        "                    parts = _new_parts(ctx)",
        "                if parts is not None:",
        # Spilled rows carry the *full* row tuple so the partition
        # re-aggregation pass (shared with the other modes) can replay
        # the row lambdas; hash(key) routes identically because the
        # declarative key equals group_key(row).
        "                    parts[hash(key) % _NPART].append(r)",
        "                    continue",
        "                acc = groups[key] = list(_INIT)",
    ]
    lines += _update_lines(entries, " " * 12, lambda s: f"acc[{s}]")
    lines += [
        "        yield PULSE",
        "    return parts",
    ]
    return "\n".join(lines) + "\n", params, positions, init, offsets


def _scalar_aggregate_source(pred, specs):
    params, pred_src, expr_srcs, positions = _render(pred, specs)
    init, offsets, entries = _slot_layout(specs, expr_srcs)
    lines = [
        "def _fused(ctx, windows):",
        "    tick = ctx.cpu_tick",
        "    seen = False",
    ]
    for k, value in enumerate(init):
        lines.append(f"    a{k} = {value!r}")
    _window_prelude(lines, positions, pred_src)
    lines += [
        # bool(range(0)) is False: with no predicate `sel` still reports
        # whether the window contributed rows, matching the vectorized
        # path's seen_any (set only for non-empty scan batches).
        "        if sel:",
        "            seen = True",
        "        for i in sel:",
        "            r = rows[i]",
    ]
    lines += _update_lines(entries, " " * 12, lambda s: f"a{s}")
    slots = ", ".join(f"a{k}" for k in range(len(init)))
    lines += [
        "        yield PULSE",
        f"    return (seen, [{slots}])",
    ]
    return "\n".join(lines) + "\n", params, positions, offsets

"""Page objects and database files.

A :class:`DbFile` owns an ordered list of page objects — the simulator's
"persistent" contents — together with an :class:`~repro.storage.block.ExtentMap`
placing each page in the storage system's LBA space.  Timing is charged by
the storage manager; page *contents* are shared Python objects (the
simulation models placement and service time, not byte durability — see
DESIGN.md §5).
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.db.errors import StorageLayoutError
from repro.storage.block import ExtentMap


class FileKind(enum.Enum):
    """What a file stores; drives the write-path classification."""

    HEAP = "heap"
    INDEX = "index"
    TEMP = "temp"
    LOG = "log"


class HeapPage:
    """A slotted page holding whole rows; deleted slots become ``None``.

    ``num_deleted`` counts tombstoned slots so scans can skip the per-row
    liveness check on the (overwhelmingly common) pages without deletions.

    ``page_lsn`` is the LSN of the last WAL record applied to this page
    (0 when the page was never touched by a logged transaction).  It
    drives the flush-respects-WAL protocol and ARIES conditional redo.
    """

    __slots__ = ("rows", "capacity", "num_deleted", "page_lsn")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise StorageLayoutError("page capacity must be >= 1 row")
        self.capacity = capacity
        self.rows: list = []
        self.num_deleted = 0
        self.page_lsn = 0

    @property
    def full(self) -> bool:
        return len(self.rows) >= self.capacity

    def append(self, row) -> int:
        """Add a row; returns its slot number."""
        if self.full:
            raise StorageLayoutError("append to a full page")
        self.rows.append(row)
        return len(self.rows) - 1

    def get(self, slot: int):
        """Row at ``slot`` or None if deleted/absent."""
        if 0 <= slot < len(self.rows):
            return self.rows[slot]
        return None

    def delete(self, slot: int) -> bool:
        """Tombstone a slot; True if a live row was deleted."""
        if 0 <= slot < len(self.rows) and self.rows[slot] is not None:
            self.rows[slot] = None
            self.num_deleted += 1
            return True
        return False

    def live_rows(self) -> Iterator[tuple[int, tuple]]:
        """(slot, row) pairs for non-deleted rows."""
        if self.num_deleted == 0:
            yield from enumerate(self.rows)
            return
        for slot, row in enumerate(self.rows):
            if row is not None:
                yield slot, row

    def live_row_list(self) -> list:
        """All live rows of the page as a fresh list (one row batch)."""
        if self.num_deleted == 0:
            return self.rows[:]
        return [row for row in self.rows if row is not None]

    def live_columns(self, positions: tuple[int, ...]) -> list[list]:
        """The page's live rows as column arrays, one list per position.

        The columnar extraction primitive of the push executor
        (DESIGN.md §12): each requested attribute comes back as its own
        list of values, in row (slot) order, tombstones skipped.  Column
        lists of one page are positionally aligned — element ``i`` of
        every list belongs to the same live row.
        """
        rows = self.rows
        if self.num_deleted:
            rows = [row for row in rows if row is not None]
        return [[row[pos] for row in rows] for pos in positions]


class DbFile:
    """A growable, extent-mapped sequence of pages."""

    def __init__(
        self,
        fileid: int,
        kind: FileKind,
        extent_map: ExtentMap,
        oid: int | None = None,
    ) -> None:
        self.fileid = fileid
        self.kind = kind
        self.extent_map = extent_map
        self.oid = oid
        self.pages: list = []

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    def allocate_page(self, page) -> int:
        """Append a page object; returns its page number."""
        self.pages.append(page)
        pageno = len(self.pages) - 1
        # Materialise the LBA mapping eagerly so TRIM covers every page.
        self.extent_map.lba_of(pageno)
        return pageno

    def page(self, pageno: int):
        try:
            return self.pages[pageno]
        except IndexError:
            raise StorageLayoutError(
                f"file {self.fileid} has no page {pageno} "
                f"(only {len(self.pages)})"
            ) from None

    def lba_of(self, pageno: int) -> int:
        return self.extent_map.lba_of(pageno)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DbFile(id={self.fileid}, kind={self.kind.value}, "
            f"pages={self.num_pages}, oid={self.oid})"
        )

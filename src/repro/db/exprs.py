"""Aggregate specifications and accumulators for the executor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.db.errors import ExecutionError

Row = tuple
ValueFn = Callable[[Row], object]

_AGG_KINDS = {"sum", "count", "avg", "min", "max"}


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: kind plus the value expression (None = count(*)).

    ``col_expr`` optionally carries the same value expression in the
    declarative :class:`~repro.db.columnar.ColExpr` form.  It never
    participates in row/vectorized evaluation — it exists so the push
    executor's fused kernels (DESIGN.md §12) can compile the expression
    to column-at-a-time code; when present it MUST compute exactly what
    ``value`` computes (the three-mode differential tests enforce this).
    """

    kind: str
    value: ValueFn | None = None
    col_expr: object | None = None

    def __post_init__(self) -> None:
        if self.kind not in _AGG_KINDS:
            raise ExecutionError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and self.value is None:
            raise ExecutionError(f"{self.kind} needs a value expression")


def agg_sum(fn: ValueFn, col_expr=None) -> AggSpec:
    return AggSpec("sum", fn, col_expr)


def agg_count(fn: ValueFn | None = None, col_expr=None) -> AggSpec:
    return AggSpec("count", fn, col_expr)


def agg_avg(fn: ValueFn, col_expr=None) -> AggSpec:
    return AggSpec("avg", fn, col_expr)


def agg_min(fn: ValueFn, col_expr=None) -> AggSpec:
    return AggSpec("min", fn, col_expr)


def agg_max(fn: ValueFn, col_expr=None) -> AggSpec:
    return AggSpec("max", fn, col_expr)


class _Acc:
    __slots__ = ("spec", "total", "count", "best")

    def __init__(self, spec: AggSpec) -> None:
        self.spec = spec
        self.total = 0.0
        self.count = 0
        self.best = None

    def add(self, row: Row) -> None:
        kind = self.spec.kind
        if kind == "count":
            if self.spec.value is None or self.spec.value(row) is not None:
                self.count += 1
            return
        value = self.spec.value(row)
        if value is None:
            return
        if kind in ("sum", "avg"):
            self.total += value
            self.count += 1
        elif kind == "min":
            if self.best is None or value < self.best:
                self.best = value
        elif kind == "max":
            if self.best is None or value > self.best:
                self.best = value

    def result(self):
        kind = self.spec.kind
        if kind == "count":
            return self.count
        if kind == "sum":
            return self.total if self.count else None
        if kind == "avg":
            return self.total / self.count if self.count else None
        return self.best


class AggState:
    """Accumulators for one group."""

    __slots__ = ("accs",)

    def __init__(self, specs: list[AggSpec]) -> None:
        self.accs = [_Acc(s) for s in specs]

    def add(self, row: Row) -> None:
        for acc in self.accs:
            acc.add(row)

    def results(self) -> tuple:
        return tuple(acc.result() for acc in self.accs)

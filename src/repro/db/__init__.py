"""Mini-DBMS substrate: the instrumented "PostgreSQL" of the reproduction.

Catalog, heap files, B+tree indexes, a buffer pool that forwards semantic
information, a storage manager with the policy assignment table, a
temp-file manager with TRIM-on-delete, and an iterator-model executor.
"""

from repro.db.catalog import Catalog, Index, Relation
from repro.db.engine import Database, QueryExecution, QueryResult
from repro.db.errors import (
    CatalogError,
    ExecutionError,
    ReproError,
    StorageLayoutError,
)
from repro.db.plan import ExecutionContext, PlanNode
from repro.db.tuples import Column, Schema, date_to_days, days_to_date, schema

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "Database",
    "ExecutionContext",
    "ExecutionError",
    "Index",
    "PlanNode",
    "QueryExecution",
    "QueryResult",
    "Relation",
    "ReproError",
    "Schema",
    "StorageLayoutError",
    "date_to_days",
    "days_to_date",
    "schema",
]

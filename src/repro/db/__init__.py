"""Mini-DBMS substrate: the instrumented "PostgreSQL" of the reproduction.

Catalog, heap files, B+tree indexes, a buffer pool that forwards semantic
information, a storage manager with the policy assignment table, a
temp-file manager with TRIM-on-delete, and an iterator-model executor.

The error hierarchy (:mod:`repro.db.errors`) is imported eagerly — it is
dependency-free and shared with the storage layer below.  Everything else
resolves lazily (PEP 562): the storage layer raises
:class:`~repro.db.errors.StorageError` subclasses, so it imports this
package, and an eager ``repro.db`` → ``engine`` → ``repro.storage``
import here would close that loop into a cycle.
"""

from __future__ import annotations

import importlib

from repro.db.errors import (
    CatalogError,
    CorruptBlockError,
    DeviceFailedError,
    ExecutionError,
    ReproError,
    StorageConfigError,
    StorageError,
    StorageLayoutError,
    TransientIOError,
)

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "CorruptBlockError",
    "Database",
    "DeviceFailedError",
    "ExecutionContext",
    "ExecutionError",
    "Index",
    "PlanNode",
    "QueryExecution",
    "QueryResult",
    "Relation",
    "ReproError",
    "Schema",
    "StorageConfigError",
    "StorageError",
    "StorageLayoutError",
    "TransientIOError",
    "date_to_days",
    "days_to_date",
    "schema",
]

_LAZY = {
    "Catalog": "repro.db.catalog",
    "Index": "repro.db.catalog",
    "Relation": "repro.db.catalog",
    "Database": "repro.db.engine",
    "QueryExecution": "repro.db.engine",
    "QueryResult": "repro.db.engine",
    "ExecutionContext": "repro.db.plan",
    "PlanNode": "repro.db.plan",
    "Column": "repro.db.tuples",
    "Schema": "repro.db.tuples",
    "date_to_days": "repro.db.tuples",
    "days_to_date": "repro.db.tuples",
    "schema": "repro.db.tuples",
}


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))

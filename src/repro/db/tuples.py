"""Row schema and width estimation.

Rows are plain Python tuples; a :class:`Schema` names the fields, declares
their kinds and estimates the on-disk row width, from which the heap page
capacity (rows per 8 KiB page) is derived.  Dates are stored as integer
day counts (days since 1992-01-01, the start of the TPC-H calendar) for
cheap comparisons.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.db.errors import CatalogError

_EPOCH = datetime.date(1992, 1, 1)

_KIND_WIDTHS = {"int": 8, "float": 8, "date": 8}
_VALID_KINDS = {"int", "float", "str", "date"}


def date_to_days(text: str) -> int:
    """'1994-06-30' -> days since 1992-01-01 (TPC-H epoch)."""
    d = datetime.date.fromisoformat(text)
    return (d - _EPOCH).days


def days_to_date(days: int) -> str:
    """Inverse of :func:`date_to_days`."""
    return (_EPOCH + datetime.timedelta(days=days)).isoformat()


@dataclass(frozen=True)
class Column:
    """One column: a name, a kind, and a width estimate for strings."""

    name: str
    kind: str
    width: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise CatalogError(f"unknown column kind {self.kind!r}")
        if self.kind == "str" and self.width <= 0:
            raise CatalogError(f"string column {self.name!r} needs a width")

    @property
    def byte_width(self) -> int:
        return _KIND_WIDTHS.get(self.kind, self.width)


class Schema:
    """An ordered set of columns with O(1) name lookup."""

    def __init__(self, columns: list[Column]) -> None:
        if not columns:
            raise CatalogError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in {names}")
        self.columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def idx(self, name: str) -> int:
        """Position of a column; raises CatalogError if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"no column named {name!r}") from None

    def col(self, name: str) -> Column:
        return self.columns[self.idx(name)]

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def row_bytes(self) -> int:
        """Estimated bytes per row including per-row overhead."""
        return sum(c.byte_width for c in self.columns) + 24  # tuple header

    def rows_per_page(self, block_size: int) -> int:
        """How many rows fit one page (64 bytes of page header assumed)."""
        return max(1, (block_size - 64) // self.row_bytes)


def schema(*cols: tuple) -> Schema:
    """Shorthand: ``schema(("a", "int"), ("b", "str", 25))``."""
    return Schema([Column(*c) for c in cols])

"""Aggregation operators.

``HashAggregate`` is the hybrid hash aggregation: groups stay in memory
until the group count exceeds ``work_mem``; rows for *new* groups then
spill to temp partitions (grace-style) while resident groups keep
aggregating in place.  This is the "hash" operator that generates the
temporary data dominating the paper's Q18 (Figure 10).

``StreamAggregate`` aggregates grouped (sorted) input — or everything into
a single group when ``group_key`` is None — without materialisation.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.db.executor.join import _new_partitions, _route
from repro.db.exprs import AggSpec, AggState
from repro.db.plan import (
    PULSE,
    PULSE_EVERY,
    ExecutionContext,
    PlanNode,
    chunk_rows,
)

KeyFn = Callable[[tuple], object]
GroupProj = Callable[[object, tuple], tuple]
"""(group key, aggregate results) -> output row."""


def _default_group_proj(key, results: tuple) -> tuple:
    if isinstance(key, tuple):
        return key + results
    return (key,) + results


class HashAggregate(PlanNode):
    """Blocking hash aggregation with grace-style spilling."""

    is_blocking = True

    def __init__(
        self,
        child: PlanNode,
        group_key: KeyFn,
        aggs: list[AggSpec],
        having: Callable[[tuple], bool] | None = None,
        project: GroupProj | None = None,
        group_cols: tuple[int, ...] | None = None,
        label: str | None = None,
    ) -> None:
        super().__init__(child, label=label or "HashAggregate")
        self.group_key = group_key
        self.aggs = aggs
        self.having = having
        self.project = project if project is not None else _default_group_proj
        self.group_cols = group_cols
        """Optional declarative mirror of ``group_key``: the column
        positions it reads.  Never evaluated on the row/vectorized paths;
        the push executor's fused kernels compile it column-at-a-time.
        When set, ``group_key`` must return the tuple of those columns
        (or the bare column value when there is exactly one)."""

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        groups: dict[object, AggState] = {}
        partitions = None
        group_key, aggs = self.group_key, self.aggs
        seen = 0
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            key = group_key(row)
            state = groups.get(key)
            if state is None:
                if partitions is None and len(groups) >= ctx.work_mem_rows:
                    partitions = _new_partitions(ctx)
                if partitions is not None:
                    _route(partitions, group_key, row)
                    continue
                state = groups[key] = AggState(aggs)
            state.add(row)

        yield from self._emit(groups)
        if partitions is not None:
            for part in partitions:
                part.finish_writing()
            for part in partitions:
                yield from self._aggregate(ctx, part.read_all())
                part.delete()  # end of this partition's temp lifetime

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        yield from self.push_pipeline(ctx, self.children[0].execute_batch(ctx))

    def push_pipeline(self, ctx: ExecutionContext, batches) -> Iterator:
        groups: dict[object, AggState] = {}
        partitions = None
        group_key, aggs = self.group_key, self.aggs
        work_mem = ctx.work_mem_rows
        for item in batches:
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            yield PULSE
            for row in item:
                key = group_key(row)
                state = groups.get(key)
                if state is None:
                    if partitions is None and len(groups) >= work_mem:
                        partitions = _new_partitions(ctx)
                    if partitions is not None:
                        _route(partitions, group_key, row)
                        continue
                    state = groups[key] = AggState(aggs)
                state.add(row)

        yield from chunk_rows(self._emit(groups))
        if partitions is not None:
            for part in partitions:
                part.finish_writing()
            for part in partitions:
                yield from self._aggregate_batches(ctx, part.read_batches())
                part.delete()

    def _aggregate_batches(self, ctx: ExecutionContext, batches) -> Iterator:
        groups: dict[object, AggState] = {}
        group_key = self.group_key
        for batch in batches:
            ctx.cpu_tick(len(batch))
            yield PULSE
            for row in batch:
                key = group_key(row)
                state = groups.get(key)
                if state is None:
                    state = groups[key] = AggState(self.aggs)
                state.add(row)
        yield from chunk_rows(self._emit(groups))

    def _aggregate(self, ctx: ExecutionContext, rows) -> Iterator[tuple]:
        groups: dict[object, AggState] = {}
        group_key = self.group_key
        seen = 0
        for row in rows:
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            key = group_key(row)
            state = groups.get(key)
            if state is None:
                state = groups[key] = AggState(self.aggs)
            state.add(row)
        yield from self._emit(groups)

    def _emit(self, groups: dict) -> Iterator[tuple]:
        for key, state in groups.items():
            out = self.project(key, state.results())
            if self.having is not None and not self.having(out):
                continue
            yield out


class StreamAggregate(PlanNode):
    """Aggregation over grouped input (or a single group)."""

    is_blocking = True

    def __init__(
        self,
        child: PlanNode,
        aggs: list[AggSpec],
        group_key: KeyFn | None = None,
        project: GroupProj | None = None,
        label: str | None = None,
    ) -> None:
        super().__init__(child, label=label or "StreamAggregate")
        self.group_key = group_key
        self.aggs = aggs
        self.project = project if project is not None else _default_group_proj

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        if self.group_key is None:
            state = AggState(self.aggs)
            seen_any = False
            for row in self.children[0].execute(ctx):
                if row is PULSE:
                    yield PULSE
                    continue
                ctx.cpu_tick()
                state.add(row)
                seen_any = True
            if seen_any:
                yield state.results()
            return

        current_key = None
        state: AggState | None = None
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            key = self.group_key(row)
            if state is None or key != current_key:
                if state is not None:
                    yield self.project(current_key, state.results())
                current_key = key
                state = AggState(self.aggs)
            state.add(row)
        if state is not None:
            yield self.project(current_key, state.results())

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        yield from self.push_pipeline(ctx, self.children[0].execute_batch(ctx))

    def push_pipeline(self, ctx: ExecutionContext, batches) -> Iterator:
        if self.group_key is None:
            state = AggState(self.aggs)
            add = state.add
            seen_any = False
            for item in batches:
                if item is PULSE:
                    yield PULSE
                    continue
                ctx.cpu_tick(len(item))
                for row in item:
                    add(row)
                seen_any = True
            if seen_any:
                yield [state.results()]
            return

        group_key, project = self.group_key, self.project
        current_key = None
        state = None
        for item in batches:
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            out: list[tuple] = []
            for row in item:
                key = group_key(row)
                if state is None or key != current_key:
                    if state is not None:
                        out.append(project(current_key, state.results()))
                    current_key = key
                    state = AggState(self.aggs)
                state.add(row)
            # Flush finished groups per input batch (not across batches):
            # emissions stay in the same inter-I/O gap as on the row path.
            if out:
                yield out
        if state is not None:
            yield [project(current_key, state.results())]

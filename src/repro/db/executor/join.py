"""Join operators: hash join (with grace-style spilling) and nested loops.

The ``Hash`` node mirrors PostgreSQL's plan shape (and the paper's Figures
7, 8 and 10, where shaded "hash" boxes generate temporary data): it is the
*blocking* build-side wrapper.  When the build side exceeds ``work_mem``
the join degrades to a grace hash join — both sides are partitioned into
temporary spill files (priority-1 temp writes under hStorage-DB), joined
partition by partition, and the spill files are deleted (TRIM) as soon as
each partition completes.

All heavy loops emit scheduling pulses (see :mod:`repro.db.plan`) so
co-running queries interleave even inside blocking phases.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.db.errors import ExecutionError
from repro.db.executor.scan import IndexScan
from repro.db.plan import PULSE, PULSE_EVERY, ExecutionContext, PlanNode
from repro.db.temp import SpillFile

KeyFn = Callable[[tuple], object]
JoinPred = Callable[[tuple, tuple], bool]
PairProj = Callable[[tuple, tuple | None], tuple]

SPILL_PARTITIONS = 8
_JOIN_MODES = {"inner", "semi", "anti", "left"}


class Hash(PlanNode):
    """Blocking build-side materialisation for a hash join."""

    is_blocking = True

    def __init__(self, child: PlanNode, key: KeyFn, label: str | None = None):
        super().__init__(child, label=label or "Hash")
        self.key = key

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        # Standalone execution just passes rows through (useful in tests);
        # HashJoin drives the build through :meth:`build_iter`.
        yield from self.children[0].execute(ctx)

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        yield from self.children[0].execute_batch(ctx)

    def build_iter(self, ctx: ExecutionContext):
        """Consume the child, yielding pulses; returns the build result.

        Generator-with-return: drive it with ``yield from`` to propagate
        pulses; the return value is ``(table, None)`` for an in-memory
        build or ``(None, partitions)`` after a grace spill.
        """
        rows: list[tuple] = []
        spilled: list[SpillFile] | None = None
        seen = 0
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            if spilled is None:
                rows.append(row)
                if len(rows) > ctx.work_mem_rows:
                    spilled = _new_partitions(ctx)
                    for buffered in rows:
                        _route(spilled, self.key, buffered)
                    rows.clear()
            else:
                _route(spilled, self.key, row)
        if spilled is not None:
            for part in spilled:
                part.finish_writing()
            return None, spilled
        table: dict = {}
        for row in rows:
            table.setdefault(self.key(row), []).append(row)
        return table, None

    def build_iter_batch(self, ctx: ExecutionContext):
        """Vectorized :meth:`build_iter`: batches in, same build result out."""
        return (
            yield from self.build_pipeline(
                ctx, self.children[0].execute_batch(ctx)
            )
        )

    def build_pipeline(self, ctx: ExecutionContext, items):
        """Build from any batch stream (vectorized child or push morsels).

        Replicates the row path's exact spill boundary (the build spills
        the moment the buffer holds ``work_mem + 1`` rows) so the grace
        partitions — and hence the temp-file I/O — are identical.
        """
        key = self.key
        rows: list[tuple] = []
        spilled: list[SpillFile] | None = None
        work_mem = ctx.work_mem_rows
        for item in items:
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            yield PULSE
            if spilled is not None:
                for row in item:
                    _route(spilled, key, row)
                continue
            if len(rows) + len(item) <= work_mem:
                rows.extend(item)
                continue
            for pos, row in enumerate(item):
                rows.append(row)
                if len(rows) > work_mem:
                    spilled = _new_partitions(ctx)
                    for buffered in rows:
                        _route(spilled, key, buffered)
                    rows.clear()
                    for rest in item[pos + 1:]:
                        _route(spilled, key, rest)
                    break
        if spilled is not None:
            for part in spilled:
                part.finish_writing()
            return None, spilled
        table: dict = {}
        for row in rows:
            table.setdefault(key(row), []).append(row)
        return table, None


def _new_partitions(ctx: ExecutionContext) -> list[SpillFile]:
    return [ctx.temp.create(ctx.query_id) for _ in range(SPILL_PARTITIONS)]


def _route(partitions: list[SpillFile], key: KeyFn, row: tuple) -> None:
    partitions[hash(key(row)) % SPILL_PARTITIONS].append(row)


class HashJoin(PlanNode):
    """Hash join; children are (probe side, Hash(build side))."""

    def __init__(
        self,
        probe: PlanNode,
        hash_node: Hash,
        probe_key: KeyFn,
        mode: str = "inner",
        join_pred: JoinPred | None = None,
        project: PairProj | None = None,
        label: str | None = None,
    ) -> None:
        if not isinstance(hash_node, Hash):
            raise ExecutionError("HashJoin's build child must be a Hash node")
        if mode not in _JOIN_MODES:
            raise ExecutionError(f"unknown join mode {mode!r}")
        super().__init__(probe, hash_node, label=label or f"HashJoin[{mode}]")
        self.probe_key = probe_key
        self.mode = mode
        self.join_pred = join_pred
        self.project = project

    @property
    def hash_node(self) -> Hash:
        return self.children[1]

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        table, partitions = yield from self.hash_node.build_iter(ctx)
        if table is not None:
            yield from self._join_stream(
                ctx, self.children[0].execute(ctx), table
            )
            return
        assert partitions is not None
        probe_parts = _new_partitions(ctx)
        seen = 0
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            _route(probe_parts, self.probe_key, row)
        for part in probe_parts:
            part.finish_writing()
        build_key = self.hash_node.key
        for build_part, probe_part in zip(partitions, probe_parts):
            table = {}
            seen = 0
            for row in build_part.read_all():
                ctx.cpu_tick()
                seen += 1
                if seen % PULSE_EVERY == 0:
                    yield PULSE
                table.setdefault(build_key(row), []).append(row)
            yield from self._join_stream(ctx, probe_part.read_all(), table)
            # End of this partition's lifetime: evict its blocks promptly.
            build_part.delete()
            probe_part.delete()

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        yield from self.push_join(
            ctx,
            self.children[0].execute_batch(ctx),
            self.hash_node.build_iter_batch(ctx),
        )

    def push_join(self, ctx: ExecutionContext, probe_batches, build) -> Iterator:
        """Join any probe batch stream against a running build generator.

        ``probe_batches`` and ``build`` are both lazy generators, so the
        probe side issues no I/O until the (blocking) build returns —
        exactly the vectorized path's ordering.  The push executor passes
        its own morsel streams for either side.
        """
        table, partitions = yield from build
        if table is not None:
            yield from self._join_batches(ctx, probe_batches, table)
            return
        assert partitions is not None
        probe_parts = _new_partitions(ctx)
        probe_key = self.probe_key
        for item in probe_batches:
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            yield PULSE
            for row in item:
                _route(probe_parts, probe_key, row)
        for part in probe_parts:
            part.finish_writing()
        build_key = self.hash_node.key
        for build_part, probe_part in zip(partitions, probe_parts):
            table = {}
            for batch in build_part.read_batches():
                ctx.cpu_tick(len(batch))
                yield PULSE
                for row in batch:
                    table.setdefault(build_key(row), []).append(row)
            yield from self._join_batches(ctx, probe_part.read_batches(), table)
            build_part.delete()
            probe_part.delete()

    def _join_batches(
        self, ctx: ExecutionContext, probe_batches, table: dict
    ) -> Iterator:
        mode, pred, project = self.mode, self.join_pred, self.project
        probe_key = self.probe_key
        for item in probe_batches:
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            out: list[tuple] = []
            for row in item:
                matches = table.get(probe_key(row), ())
                if pred is not None:
                    matches = [m for m in matches if pred(row, m)]
                _append_matches(out, mode, project, row, matches)
            if out:
                yield out
            yield PULSE

    def _join_stream(
        self, ctx: ExecutionContext, probe_rows, table: dict
    ) -> Iterator[tuple]:
        mode, pred, project = self.mode, self.join_pred, self.project
        probe_key = self.probe_key
        seen = 0
        for row in probe_rows:
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            matches = table.get(probe_key(row), ())
            if pred is not None:
                matches = [m for m in matches if pred(row, m)]
            if mode == "inner":
                for match in matches:
                    yield _combine(project, row, match)
            elif mode == "semi":
                # A semi join yields the probe row itself (the first match
                # only witnesses existence).
                if matches:
                    yield project(row, matches[0]) if project else row
            elif mode == "anti":
                if not matches:
                    yield _combine(project, row, None)
            else:  # left outer
                if matches:
                    for match in matches:
                        yield _combine(project, row, match)
                else:
                    yield _combine(project, row, None)


def _append_matches(
    out: list, mode: str, project: PairProj | None, row: tuple, matches
) -> None:
    """Append one probe row's join output to ``out`` (batch paths)."""
    if mode == "inner":
        for match in matches:
            out.append(_combine(project, row, match))
    elif mode == "semi":
        if matches:
            out.append(project(row, matches[0]) if project else row)
    elif mode == "anti":
        if not matches:
            out.append(_combine(project, row, None))
    else:  # left outer
        if matches:
            for match in matches:
                out.append(_combine(project, row, match))
        else:
            out.append(_combine(project, row, None))


class NestedLoopIndexJoin(PlanNode):
    """Nested loops with an index scan inner side (pipelined, non-blocking)."""

    def __init__(
        self,
        outer: PlanNode,
        inner: IndexScan,
        outer_key: KeyFn,
        mode: str = "inner",
        join_pred: JoinPred | None = None,
        project: PairProj | None = None,
        label: str | None = None,
    ) -> None:
        if not isinstance(inner, IndexScan):
            raise ExecutionError(
                "NestedLoopIndexJoin's inner child must be an IndexScan"
            )
        if mode not in _JOIN_MODES:
            raise ExecutionError(f"unknown join mode {mode!r}")
        super().__init__(outer, inner, label=label or f"NLIJ[{mode}]")
        self.outer_key = outer_key
        self.mode = mode
        self.join_pred = join_pred
        self.project = project

    @property
    def inner(self) -> IndexScan:
        return self.children[1]

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        mode, pred, project = self.mode, self.join_pred, self.project
        outer_key, inner = self.outer_key, self.inner
        seen = 0
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            # Every probe is (potential) random I/O: pulse per outer row.
            seen += 1
            if seen % 8 == 0:
                yield PULSE
            matches = inner.probe(ctx, outer_key(row))
            if pred is not None:
                matches = [m for m in matches if pred(row, m)]
            if mode == "inner":
                for match in matches:
                    yield _combine(project, row, match)
            elif mode == "semi":
                if matches:
                    yield project(row, matches[0]) if project else row
            elif mode == "anti":
                if not matches:
                    yield _combine(project, row, None)
            else:  # left outer
                if matches:
                    for match in matches:
                        yield _combine(project, row, match)
                else:
                    yield _combine(project, row, None)

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        mode, pred, project = self.mode, self.join_pred, self.project
        outer_key, inner = self.outer_key, self.inner
        probes = 0
        for item in self.children[0].execute_batch(ctx):
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            for row in item:
                # Every probe is (potential) random I/O: keep the row
                # path's pulse-every-8-probes cadence inside the batch.
                probes += 1
                if probes % 8 == 0:
                    yield PULSE
                matches = inner.probe(ctx, outer_key(row))
                if pred is not None:
                    matches = [m for m in matches if pred(row, m)]
                out: list[tuple] = []
                _append_matches(out, mode, project, row, matches)
                # One mini-batch per outer row: a downstream random-access
                # operator (e.g. a stacked NLIJ, as in Q21) must issue its
                # probe for this row *before* the next probe here, or the
                # request order would diverge from the row-at-a-time path.
                if out:
                    yield out


def _combine(project: PairProj | None, left: tuple, right: tuple | None) -> tuple:
    if project is not None:
        return project(left, right)
    if right is None:
        return left
    return left + right

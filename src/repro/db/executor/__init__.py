"""Iterator-model executor operators."""

from repro.db.executor.agg import HashAggregate, StreamAggregate
from repro.db.executor.join import Hash, HashJoin, NestedLoopIndexJoin
from repro.db.executor.misc import Filter, Limit, Materialize, Project, TopN
from repro.db.executor.scan import IndexScan, SeqScan
from repro.db.executor.sort import Sort

__all__ = [
    "Filter",
    "Hash",
    "HashAggregate",
    "HashJoin",
    "IndexScan",
    "Limit",
    "Materialize",
    "NestedLoopIndexJoin",
    "Project",
    "SeqScan",
    "Sort",
    "StreamAggregate",
    "TopN",
]

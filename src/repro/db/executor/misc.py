"""Small pipeline operators: filter, project, limit, top-N, materialise."""

from __future__ import annotations

import heapq
from typing import Callable, Iterator

from repro.db.errors import ExecutionError
from repro.db.plan import (
    PULSE,
    PULSE_EVERY,
    ExecutionContext,
    PlanNode,
    PushConsumer,
    chunk_rows,
)


class _FilterConsumer(PushConsumer):
    __slots__ = ("ctx", "pred")

    def __init__(self, ctx: ExecutionContext, pred) -> None:
        self.ctx = ctx
        self.pred = pred

    def consume(self, batch: list, out: list) -> None:
        self.ctx.cpu_tick(len(batch))
        pred = self.pred
        res = [row for row in batch if pred(row)]
        if res:
            out.append(res)


class _ProjectConsumer(PushConsumer):
    __slots__ = ("ctx", "fn")

    def __init__(self, ctx: ExecutionContext, fn) -> None:
        self.ctx = ctx
        self.fn = fn

    def consume(self, batch: list, out: list) -> None:
        self.ctx.cpu_tick(len(batch))
        fn = self.fn
        out.append([fn(row) for row in batch])


class Filter(PlanNode):
    """Row filter."""

    def __init__(self, child: PlanNode, pred: Callable[[tuple], bool],
                 label: str | None = None) -> None:
        super().__init__(child, label=label or "Filter")
        self.pred = pred

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        pred = self.pred
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            if pred(row):
                yield row

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        pred = self.pred
        for item in self.children[0].execute_batch(ctx):
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            out = [row for row in item if pred(row)]
            if out:
                yield out

    def push_consumer(self, ctx: ExecutionContext) -> PushConsumer:
        return _FilterConsumer(ctx, self.pred)


class Project(PlanNode):
    """Row projection / expression evaluation."""

    def __init__(self, child: PlanNode, fn: Callable[[tuple], tuple],
                 label: str | None = None) -> None:
        super().__init__(child, label=label or "Project")
        self.fn = fn

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        fn = self.fn
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            yield fn(row)

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        fn = self.fn
        for item in self.children[0].execute_batch(ctx):
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            yield [fn(row) for row in item]

    def push_consumer(self, ctx: ExecutionContext) -> PushConsumer:
        return _ProjectConsumer(ctx, self.fn)


class Limit(PlanNode):
    """First-N rows.

    No native ``execute_batch``: truncation is inherently row-at-a-time —
    the row path stops pulling (and stops charging CPU) at exactly the
    n-th output row, while a batch-granular child would have charged for
    the whole final batch before Limit could truncate it.  The default
    mini-batch adapter runs the subtree on the row path, keeping the
    simulated-results invariant exact.
    """

    def __init__(self, child: PlanNode, n: int, label: str | None = None) -> None:
        if n < 0:
            raise ExecutionError("limit must be non-negative")
        super().__init__(child, label=label or f"Limit({n})")
        self.n = n

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        if self.n == 0:
            return
        produced = 0
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            yield row
            produced += 1
            if produced >= self.n:
                return


class TopN(PlanNode):
    """Order-by + limit in one blocking heap pass (no spill needed)."""

    is_blocking = True

    def __init__(
        self,
        child: PlanNode,
        key: Callable[[tuple], object],
        n: int,
        reverse: bool = False,
        label: str | None = None,
    ) -> None:
        if n < 1:
            raise ExecutionError("TopN needs n >= 1")
        super().__init__(child, label=label or f"TopN({n})")
        self.key = key
        self.n = n
        self.reverse = reverse

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        rows = []
        seen = 0
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            rows.append(row)
        pick = heapq.nlargest if self.reverse else heapq.nsmallest
        yield from pick(self.n, rows, key=self.key)

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        yield from self.push_pipeline(ctx, self.children[0].execute_batch(ctx))

    def push_pipeline(self, ctx: ExecutionContext, batches) -> Iterator:
        rows: list[tuple] = []
        for item in batches:
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            rows.extend(item)
            yield PULSE
        pick = heapq.nlargest if self.reverse else heapq.nsmallest
        top = pick(self.n, rows, key=self.key)
        if top:
            yield top


class Materialize(PlanNode):
    """In-memory materialisation of a small input (rescannable).

    Several TPC-H plans share one Materialize instance between two
    consumers (a decorrelated aggregate and the main pipeline); the first
    execution buffers rows, later executions replay them without touching
    storage.
    """

    is_blocking = True

    def __init__(self, child: PlanNode, label: str | None = None) -> None:
        super().__init__(child, label=label or "Materialize")
        self._rows: list[tuple] | None = None

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        if self._rows is None:
            rows: list[tuple] = []
            for row in self.children[0].execute(ctx):
                if row is PULSE:
                    yield PULSE
                    continue
                rows.append(row)
            self._rows = rows
        yield from self._rows

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        yield from self.push_pipeline(ctx, self.children[0].execute_batch(ctx))

    def push_pipeline(self, ctx: ExecutionContext, batches) -> Iterator:
        del ctx
        if self._rows is None:
            rows: list[tuple] = []
            for item in batches:
                if item is PULSE:
                    yield PULSE
                    continue
                rows.extend(item)
            self._rows = rows
        yield from chunk_rows(self._rows)

    def reset(self) -> None:
        self._rows = None

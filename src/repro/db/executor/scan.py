"""Scan operators: sequential heap scans and B+tree index scans."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.registry import RandomOperatorRef
from repro.core.semantics import ContentType, SemanticInfo
from repro.db.catalog import Index, Relation
from repro.db.plan import PULSE, PULSE_EVERY, ExecutionContext, PlanNode

Pred = Callable[[tuple], bool]
Proj = Callable[[tuple], tuple]


class SeqScan(PlanNode):
    """Full table scan: sequential requests (Rule 1 traffic)."""

    def __init__(
        self,
        relation: Relation,
        pred: Pred | None = None,
        project: Proj | None = None,
        pred_cols=None,
        label: str | None = None,
    ) -> None:
        super().__init__(label=label or f"SeqScan({relation.name})")
        self.relation = relation
        self.pred = pred
        self.project = project
        self.pred_cols = pred_cols
        """Optional declarative mirror of ``pred`` (a
        :class:`~repro.db.columnar.ColumnPredicate`) — never evaluated on
        the row/vectorized paths; the push executor's fused kernels
        compile it column-at-a-time.  When set it must accept exactly
        the rows ``pred`` accepts."""

    def _rows(self, ctx: ExecutionContext, sem: SemanticInfo) -> Iterator[tuple]:
        """Row stream: current state, or the MVCC snapshot's view when the
        query carries one — same page requests either way."""
        if ctx.snapshot is not None and ctx.mvcc is not None:
            for batch in self.relation.heap.scan_snapshot(
                ctx.pool, sem, ctx.snapshot, ctx.mvcc
            ):
                yield from batch
            return
        for _, row in self.relation.heap.scan(ctx.pool, sem):
            yield row

    def _batches(self, ctx: ExecutionContext, sem: SemanticInfo) -> Iterator[list]:
        if ctx.snapshot is not None and ctx.mvcc is not None:
            return self.relation.heap.scan_snapshot(
                ctx.pool, sem, ctx.snapshot, ctx.mvcc
            )
        return self.relation.heap.scan_batches(ctx.pool, sem)

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        sem = SemanticInfo.table_scan(self.relation.oid, query_id=ctx.query_id)
        pred, project = self.pred, self.project
        seen = 0
        for row in self._rows(ctx, sem):
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            if pred is not None and not pred(row):
                continue
            yield project(row) if project is not None else row

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        sem = SemanticInfo.table_scan(self.relation.oid, query_id=ctx.query_id)
        pred, project = self.pred, self.project
        for batch in self._batches(ctx, sem):
            ctx.cpu_tick(len(batch))
            if pred is not None:
                batch = [row for row in batch if pred(row)]
            if project is not None:
                batch = [project(row) for row in batch]
            if batch:
                yield batch
            yield PULSE

    def push_batches(self, ctx: ExecutionContext) -> Iterator:
        """Morsel source for the push executor: one batch per read-ahead
        window instead of one per page (DESIGN.md §12).

        I/O happens only at window faults, so the coarser batching emits
        the same rows in the same order against an identical request
        stream; the per-operator CPU totals are unchanged because
        :meth:`ExecutionContext.cpu_tick` flushes in fixed 512-tuple
        chunks regardless of call grouping.  Snapshot scans resolve
        versions page-at-a-time and stay on the vectorized path.
        """
        if ctx.snapshot is not None and ctx.mvcc is not None:
            yield from self.execute_batch(ctx)
            return
        sem = SemanticInfo.table_scan(self.relation.oid, query_id=ctx.query_id)
        pred, project = self.pred, self.project
        heap = self.relation.heap
        for batch in heap.scan_window_batches(ctx.pool, sem):
            ctx.cpu_tick(len(batch))
            if pred is not None:
                batch = [row for row in batch if pred(row)]
            if project is not None:
                batch = [project(row) for row in batch]
            if batch:
                yield batch
            yield PULSE


class IndexScan(PlanNode):
    """B+tree range/point scan plus (optionally) heap fetches.

    Both the index pages and the fetched table pages are random requests
    issued by this operator, at the operator's effective plan level — the
    paper's "requests to access a table and its corresponding index are
    all random" (Section 4.2.2).

    No native ``execute_batch``: every emitted row sits between this
    operator's own random reads (btree descent, heap fetch), so the
    vectorized path must stay row-granular to keep the request order
    identical — exactly what the default mini-batch adapter does.
    """

    def __init__(
        self,
        index: Index,
        lo=None,
        hi=None,
        pred: Pred | None = None,
        project: Proj | None = None,
        fetch: bool = True,
        label: str | None = None,
    ) -> None:
        super().__init__(
            label=label or f"IndexScan({index.table.name}.{index.column})"
        )
        self.index = index
        self.lo = lo
        self.hi = hi
        self.pred = pred
        self.project = project
        self.fetch = fetch

    def random_refs(self, level: int) -> list[RandomOperatorRef]:
        refs = [RandomOperatorRef(self.index.oid, level)]
        if self.fetch:
            refs.append(RandomOperatorRef(self.index.table.oid, level))
        return refs

    def _semantics(self, ctx: ExecutionContext) -> tuple[SemanticInfo, SemanticInfo]:
        level = ctx.level(self)
        sem_index = SemanticInfo.random_access(
            ContentType.INDEX, self.index.oid, level, query_id=ctx.query_id
        )
        sem_table = SemanticInfo.random_access(
            ContentType.TABLE, self.index.table.oid, level, query_id=ctx.query_id
        )
        return sem_index, sem_table

    def _entries(
        self, ctx: ExecutionContext, lo, hi, sem_index: SemanticInfo
    ) -> Iterator[tuple]:
        """(key, rid) stream of the range scan.  Under a snapshot, the
        tree's live entries are merged (in key order) with tombstoned
        entries whose deletion the snapshot must not see — the B-tree
        itself is unversioned, so this is what keeps index scans on the
        same transaction-consistent image as heap scans."""
        live = self.index.btree.range_scan(ctx.pool, lo, hi, sem_index)
        snapshot, mvcc = ctx.snapshot, ctx.mvcc
        if snapshot is None or mvcc is None:
            yield from live
            return
        hidden = mvcc.hidden_index_entries(
            self.index.btree.file.fileid, lo, hi, snapshot
        )
        if not hidden:
            yield from live
            return
        resurrect = iter(hidden)
        nxt = next(resurrect, None)
        for key, rid in live:
            while nxt is not None and nxt[0] <= key:
                yield nxt
                nxt = next(resurrect, None)
            yield (key, rid)
        while nxt is not None:
            yield nxt
            nxt = next(resurrect, None)

    def _emit(
        self, ctx: ExecutionContext, lo, hi, sem_index: SemanticInfo,
        sem_table: SemanticInfo,
    ) -> Iterator[tuple]:
        heap = self.index.table.heap
        pred, project = self.pred, self.project
        snapshot, mvcc = ctx.snapshot, ctx.mvcc
        for _key, rid in self._entries(ctx, lo, hi, sem_index):
            ctx.cpu_tick()
            if self.fetch:
                if snapshot is not None and mvcc is not None:
                    row = heap.fetch_visible(
                        ctx.pool, rid, sem_table, snapshot, mvcc
                    )
                else:
                    row = heap.fetch(ctx.pool, rid, sem_table)
                if row is None:  # deleted since the entry was made
                    continue
            else:
                row = (_key, rid)
            if pred is not None and not pred(row):
                continue
            yield row

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        sem_index, sem_table = self._semantics(ctx)
        project = self.project
        seen = 0
        for row in self._emit(ctx, self.lo, self.hi, sem_index, sem_table):
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            yield project(row) if project is not None else row

    def probe(self, ctx: ExecutionContext, key) -> list[tuple]:
        """Point probe used as the inner side of a nested-loop join.

        Returns plain rows (no pulses, no projection); the join applies
        its own pair projection.
        """
        sem_index, sem_table = self._semantics(ctx)
        rows = list(self._emit(ctx, key, key, sem_index, sem_table))
        if self.project is not None:
            rows = [self.project(row) for row in rows]
        return rows

"""Sort operator: in-memory or external merge sort with temp spill runs."""

from __future__ import annotations

import heapq
from typing import Callable, Iterator

from repro.db.plan import (
    PULSE,
    PULSE_EVERY,
    ExecutionContext,
    PlanNode,
    chunk_rows,
)

KeyFn = Callable[[tuple], object]


class Sort(PlanNode):
    """Blocking sort.

    Inputs up to ``work_mem`` rows sort in memory; larger inputs spill
    sorted runs to temporary files and merge them (classic external merge
    sort).  Runs are temp data: written at priority 1 and TRIMmed as soon
    as the merge finishes.
    """

    is_blocking = True

    def __init__(
        self,
        child: PlanNode,
        key: KeyFn,
        reverse: bool = False,
        label: str | None = None,
    ) -> None:
        super().__init__(child, label=label or "Sort")
        self.key = key
        self.reverse = reverse

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        runs: list = []
        buffer: list[tuple] = []
        seen = 0
        for row in self.children[0].execute(ctx):
            if row is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick()
            seen += 1
            if seen % PULSE_EVERY == 0:
                yield PULSE
            buffer.append(row)
            if len(buffer) > ctx.work_mem_rows:
                runs.append(self._spill_run(ctx, buffer))
                buffer = []
        if not runs:
            buffer.sort(key=self.key, reverse=self.reverse)
            yield from buffer
            return
        if buffer:
            runs.append(self._spill_run(ctx, buffer))
        streams = [run.read_all() for run in runs]
        emitted = 0
        try:
            for row in heapq.merge(*streams, key=self.key, reverse=self.reverse):
                ctx.cpu_tick()
                emitted += 1
                if emitted % PULSE_EVERY == 0:
                    yield PULSE
                yield row
        finally:
            for run in runs:
                run.delete()

    def execute_batch(self, ctx: ExecutionContext) -> Iterator:
        yield from self.push_pipeline(ctx, self.children[0].execute_batch(ctx))

    def push_pipeline(self, ctx: ExecutionContext, batches) -> Iterator:
        runs: list = []
        buffer: list[tuple] = []
        work_mem = ctx.work_mem_rows
        for item in batches:
            if item is PULSE:
                yield PULSE
                continue
            ctx.cpu_tick(len(item))
            yield PULSE
            if len(buffer) + len(item) <= work_mem:
                buffer.extend(item)
                continue
            # The batch crosses work_mem: replicate the row path's exact
            # spill boundary (a run spills at work_mem + 1 buffered rows).
            for row in item:
                buffer.append(row)
                if len(buffer) > work_mem:
                    runs.append(self._spill_run(ctx, buffer))
                    buffer = []
        if not runs:
            buffer.sort(key=self.key, reverse=self.reverse)
            yield from chunk_rows(buffer)
            return
        if buffer:
            runs.append(self._spill_run(ctx, buffer))
        streams = [run.read_all() for run in runs]
        emitted = 0
        try:
            # The merge pulls from the spill runs' read streams lazily, so
            # each merged row sits between run-page reads: emit one-row
            # mini-batches (like the row path) rather than accumulating
            # across those I/O boundaries.
            for row in heapq.merge(*streams, key=self.key, reverse=self.reverse):
                ctx.cpu_tick()
                emitted += 1
                if emitted % PULSE_EVERY == 0:
                    yield PULSE
                yield [row]
        finally:
            for run in runs:
                run.delete()

    def _spill_run(self, ctx: ExecutionContext, buffer: list[tuple]):
        buffer.sort(key=self.key, reverse=self.reverse)
        run = ctx.temp.create(ctx.query_id)
        for row in buffer:
            run.append(row)
        run.finish_writing()
        return run

"""Command-line interface: run queries and experiments from a shell.

Usage::

    python -m repro query 9 --config hstorage --scale 0.3
    python -m repro explain 21 --scale 0.1
    python -m repro experiment fig6 --scale 0.5
    python -m repro sequence --config hstorage --scale 0.3
    python -m repro placement --mode hybrid --shifting --json
    python -m repro trace 6 --chrome q6_trace.json
    python -m repro metrics --queries 1 6
    python -m repro --scale 0.05 serve --json
    python -m repro --scale 0.05 monitor --prometheus
    python -m repro --scale 0.02 monitor --overload --json
    python -m repro chaos --seed 3 --profile corrupt --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.levels import compute_effective_levels
from repro.harness import ExperimentRunner, RunnerSettings
from repro.harness.chaos import CHAOS_PROFILES
from repro.harness.configs import EXTENDED_CONFIG_NAMES
from repro.storage.placement import PLACEMENT_MODES
from repro.storage.requests import RequestType
from repro.tpch.queries import QUERY_IDS, query_builder, query_label

_EXPERIMENTS = {
    "fig4": "fig4_diversity",
    "fig5": "fig5_sequential",
    "fig6": "fig6_random",
    "fig9": "fig9_temp",
    "fig11": "fig11_table8_sequence",
    "fig12": "fig12_concurrency",
    "table4": "table4_lru_sequential",
    "table5": "table5_q9_priorities",
    "table6": "table6_q21",
    "table7": "table7_q18",
    "table9": "table9_throughput",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="hStorage-DB reproduction toolkit"
    )
    parser.add_argument("--scale", type=float, default=0.3,
                        help="mini scale factor (default 0.3)")
    parser.add_argument("--seed", type=int, default=42)
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="run one TPC-H query")
    q.add_argument("number", type=int, choices=QUERY_IDS)
    q.add_argument("--config", choices=EXTENDED_CONFIG_NAMES, default="hstorage")

    e = sub.add_parser("explain", help="print a query plan with levels")
    e.add_argument("number", type=int, choices=QUERY_IDS)

    x = sub.add_parser("experiment", help="reproduce one table/figure")
    x.add_argument("name", choices=sorted(_EXPERIMENTS))

    s = sub.add_parser("sequence", help="run the power-test sequence")
    s.add_argument("--config", choices=EXTENDED_CONFIG_NAMES, default="hstorage")

    p = sub.add_parser(
        "placement",
        help="run the hot-set workload under one placement mode and dump "
        "the heat map, tier occupancy and migration counters",
    )
    p.add_argument("--mode", choices=PLACEMENT_MODES, default="hybrid")
    p.add_argument("--config", choices=("hstorage", "lru", "tier3"),
                   default="hstorage")
    p.add_argument("--shifting", action="store_true",
                   help="rotate the hot set mid-run (default: static)")
    p.add_argument("--ops", type=int, default=240,
                   help="hot-set operations to run (default 240)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of tables")

    t = sub.add_parser(
        "trace",
        help="run one TPC-H query with deterministic span tracing and "
        "operator-level profiling (DESIGN.md §14)",
    )
    t.add_argument("number", type=int, choices=QUERY_IDS)
    t.add_argument("--config", choices=EXTENDED_CONFIG_NAMES,
                   default="hstorage")
    t.add_argument("--chrome", metavar="PATH",
                   help="write the Chrome trace_event JSON here "
                   "(loadable in Perfetto / chrome://tracing)")
    t.add_argument("--json", action="store_true",
                   help="emit the span tree + profile as JSON")

    m = sub.add_parser(
        "metrics",
        help="run queries against an instrumented stack and dump the "
        "metrics registry (latency percentiles per QoS class)",
    )
    m.add_argument("--config", choices=EXTENDED_CONFIG_NAMES,
                   default="hstorage")
    m.add_argument("--queries", type=int, nargs="*", metavar="Q",
                   help="TPC-H queries to run (default: all 22, "
                   "power-test order)")
    m.add_argument("--json", action="store_true",
                   help="emit the full telemetry snapshot as JSON")

    v = sub.add_parser(
        "serve",
        help="run the deterministic multi-tenant serving front-end: "
        "seeded sessions, admission control, weighted-fair QoS "
        "(DESIGN.md §15)",
    )
    v.add_argument("--config", choices=("hstorage", "lru", "tier3"),
                   default="hstorage")
    v.add_argument("--sessions", type=int, default=2,
                   help="sessions per tenant (default 2)")
    v.add_argument("--ops", type=int, default=4,
                   help="operations per session (default 4)")
    v.add_argument("--quantum", type=int, default=64)
    v.add_argument("--no-fair", action="store_true",
                   help="disable weighted-fair dispatch in the I/O "
                   "scheduler (admission control stays on)")
    v.add_argument("--json", action="store_true",
                   help="emit the full serving report as canonical JSON")

    mon = sub.add_parser(
        "monitor",
        help="run a monitored serving window — time-series telemetry, "
        "SLO burn-rate alerts, optional overload/governor experiment "
        "(DESIGN.md §16)",
    )
    mon.add_argument("--config", choices=("hstorage", "lru", "tier3"),
                     default="hstorage")
    mon.add_argument("--sessions", type=int, default=3,
                     help="sessions per tenant (default 3)")
    mon.add_argument("--ops", type=int, default=4,
                     help="operations per session (default 4)")
    mon.add_argument("--overload", action="store_true",
                     help="run the two-arm ~1000-session overload "
                     "experiment (governor off vs on) instead of the "
                     "small monitored window")
    mon.add_argument("--overload-sessions", type=int, default=None,
                     metavar="N", help="total sessions for --overload "
                     "(default 1000)")
    mon.add_argument("--prometheus", action="store_true",
                     help="also print the Prometheus text exposition")
    mon.add_argument("--json", action="store_true",
                     help="emit the byte-deterministic dashboard JSON")

    c = sub.add_parser(
        "chaos",
        help="run a deterministic fault-injection sweep and report the "
        "fault trace, retry/repair counters and integrity verdict",
    )
    c.add_argument("--profile", choices=CHAOS_PROFILES, default="transient")
    c.add_argument("--config", choices=("hstorage", "lru", "tier3"),
                   default="hstorage")
    c.add_argument("--queries", type=int, nargs="*", metavar="Q",
                   help="TPC-H queries to sweep (default: all 22, "
                   "power-test order)")
    c.add_argument("--oltp", action="store_true",
                   help="force the interleaved OLTP mix into the sweep "
                   "(default: only under the transient profile)")
    c.add_argument("--json", action="store_true",
                   help="emit the full machine-readable report")
    return parser


def _runner(args) -> ExperimentRunner:
    return ExperimentRunner(RunnerSettings(scale=args.scale, seed=args.seed))


def _cmd_query(args) -> int:
    runner = _runner(args)
    db, _ = runner.fresh_database(args.config)
    result = db.run_query(
        query_builder(args.number), label=query_label(args.number)
    )
    print(f"{result.label} under {args.config}: {result.row_count} rows, "
          f"{result.sim_seconds:.4f} simulated seconds")
    for rtype in RequestType:
        counts = result.stats.by_type.get(rtype)
        if counts and counts.requests:
            print(f"  {rtype.value:12s} requests={counts.requests:6d} "
                  f"blocks={counts.blocks:8d} hits={counts.cache_hits:8d}")
    for priority, counts in sorted(result.stats.by_priority.items()):
        print(f"  priority {priority}: {counts.cache_hits}/{counts.blocks} "
              f"hits ({counts.hit_ratio:.0%})")
    return 0


def _cmd_explain(args) -> int:
    runner = _runner(args)
    db, _ = runner.fresh_database("hstorage")
    plan = query_builder(args.number)(db)
    levels = compute_effective_levels(plan)
    print(plan.explain(levels=levels))
    return 0


def _cmd_experiment(args) -> int:
    from repro.harness import experiments as mod

    runner = _runner(args)
    fn = getattr(mod, _EXPERIMENTS[args.name])
    print(fn(runner).render())
    return 0


def _cmd_sequence(args) -> int:
    runner = _runner(args)
    results = runner.run_sequence(args.config)
    total = sum(r.sim_seconds for r in results)
    for r in results:
        print(f"  {r.label:5s} {r.sim_seconds:9.4f} s")
    print(f"total: {total:.3f} simulated seconds under {args.config}")
    return 0


def _cmd_placement(args) -> int:
    from repro.harness.shift import run_placement_shift

    result = run_placement_shift(
        mode=args.mode,
        shifting=args.shifting,
        kind=args.config,
        scale=args.scale,
        n_ops=args.ops,
        seed=args.seed,
    )
    top = sorted(
        result.heat_snapshot.items(),
        key=lambda kv: (-(kv[1][0] + kv[1][1]), kv[0]),
    )[:10]
    if args.json:
        payload = result.to_json()
        payload["heat_top"] = [
            {"extent": eid, "reads": rw[0], "writes": rw[1]}
            for eid, rw in top
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    workload = "shifting hot set" if result.shifting else "static hot set"
    print(f"{result.mode} placement under {result.kind}: {workload}, "
          f"{result.n_ops} ops, {result.commits} commits")
    print(f"  foreground: {result.sim_seconds:.4f} simulated seconds, "
          f"{result.foreground_requests} requests, "
          f"{result.foreground_blocks} blocks, "
          f"{result.cache_hits} cache hits")
    mig = result.migration
    print(f"  migration:  {mig.get('epochs', 0)} epochs, "
          f"{mig.get('blocks_promoted', 0)} promoted, "
          f"{mig.get('blocks_demoted', 0)} demoted, "
          f"{mig.get('blocks_declined', 0)} declined, "
          f"{mig.get('migration_seconds', 0.0):.4f} background seconds")
    print(f"  background clock: {result.background_seconds:.4f} s "
          f"(migration I/O accounted separately from query I/O)")
    if result.tier_occupancy:
        occupancy = "  ".join(
            f"{name}={blocks}" for name, blocks in result.tier_occupancy.items()
        )
        print(f"  tier occupancy: {occupancy}")
    if top:
        print("  hottest extents (fixed-point decayed counters):")
        print(f"    {'extent':>8s} {'reads':>10s} {'writes':>10s}")
        for eid, (reads, writes) in top:
            print(f"    {eid:8d} {reads:10d} {writes:10d}")
    return 0


def _observed_database(runner, kind: str, tracing: bool = True):
    """A loaded database with an attached (initially muted) Observer.

    The observer is disabled while the database is built and loaded, so
    telemetry covers exactly the measured window; measurements are reset
    before it is armed.
    """
    from repro.obs import Observer

    obs = Observer(enabled=False, tracing=tracing)
    db, _ = runner.fresh_database(kind, observer=obs)
    db.reset_measurements()
    obs.reset()
    obs.enabled = True
    return db, obs


def _cmd_trace(args) -> int:
    from repro.obs.trace import validate_chrome

    runner = _runner(args)
    db, obs = _observed_database(runner, args.config)
    profile = db.explain_analyze(
        query_builder(args.number), label=query_label(args.number)
    )
    if args.json:
        payload = {
            "profile": profile.as_dict(),
            "trace": obs.tracer.to_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(profile.render())
        print()
        print(obs.tracer.render())
    if args.chrome:
        data = obs.tracer.to_chrome()
        problems = validate_chrome(data)
        if problems:  # pragma: no cover - defensive
            print(f"invalid chrome trace: {problems}", file=sys.stderr)
            return 1
        with open(args.chrome, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
        print(f"chrome trace written to {args.chrome} "
              f"({len(data['traceEvents'])} events)")
    return 0


def _cmd_metrics(args) -> int:
    from repro.tpch.streams import POWER_ORDER as _ORDER

    runner = _runner(args)
    db, obs = _observed_database(runner, args.config, tracing=False)
    queries = args.queries or list(_ORDER)
    for qid in queries:
        db.run_query(query_builder(qid), label=query_label(qid),
                     collect=False)
    # Publishes the recovery gauges (per-tier retries) into the registry.
    db.storage_manager.recovery_summary()
    if args.json:
        print(obs.telemetry_json())
        return 0
    snapshot = obs.metrics.snapshot()
    print(f"metrics: {len(queries)} queries under {args.config} "
          f"(scale {args.scale})")
    print("\n  counters:")
    for key, value in snapshot["counters"].items():
        print(f"    {key:56s} {value:>12,}")
    if snapshot["gauges"]:
        print("\n  gauges:")
        for key, value in snapshot["gauges"].items():
            rendered = f"{value:,.4f}" if isinstance(value, float) else value
            print(f"    {key:56s} {rendered:>12}")
    print("\n  latency histograms (seconds):")
    print(f"    {'key':56s} {'count':>8s} {'p50':>10s} {'p95':>10s} "
          f"{'p99':>10s} {'max':>10s}")
    for key, hist in obs.metrics.histograms():
        s = hist.summary()
        print(f"    {key:56s} {s['count']:>8,} {s['p50']:>10.6f} "
              f"{s['p95']:>10.6f} {s['p99']:>10.6f} {s['max']:>10.6f}")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, default_tenants, run_serving

    config = ServeConfig(
        seed=args.seed,
        quantum=args.quantum,
        fair=not args.no_fair,
        tenants=default_tenants(sessions=args.sessions, ops=args.ops),
    )
    report = run_serving(config, kind=args.config, scale=args.scale)
    if args.json:
        print(report.to_json())
        return 0
    print(f"serving run: config={args.config} scale={args.scale} "
          f"seed={args.seed} quantum={args.quantum} "
          f"fair={'off' if args.no_fair else 'on'}")
    print(f"  elapsed: {report.elapsed_seconds:.4f} simulated seconds")
    print(f"  {'class':12s} {'w':>4s} {'quanta':>7s} {'done':>5s} "
          f"{'defer':>6s} {'rej':>4s} {'p50':>10s} {'p95':>10s} "
          f"{'p99':>10s}")
    for name, cls in sorted(report.classes.items()):
        lat = cls["latency"]
        print(f"  {name:12s} {cls['weight']:4.0f} {cls['quanta']:7d} "
              f"{cls['ops_completed']:5d} {cls['ops_deferred']:6d} "
              f"{cls['ops_rejected']:4d} {lat['p50']:10.6f} "
              f"{lat['p95']:10.6f} {lat['p99']:10.6f}")
    for name, tenant in report.tenants.items():
        adm = tenant["admission"]
        print(f"  tenant {name:14s} class={tenant['class']:12s} "
              f"ops={tenant['ops_completed']:4d} "
              f"admitted={adm['admitted']:4d} deferred={adm['deferred']:4d} "
              f"rejected={adm['rejected']:4d}")
    return 0


def _cmd_monitor(args) -> int:
    from repro.obs import dashboard_json, prometheus_text
    from repro.serve import ServeConfig, build_frontend, default_tenants
    from repro.obs.alerts import default_monitor_spec

    if args.overload:
        from repro.serve.overload import (
            DEFAULT_OVERLOAD_SESSIONS,
            run_overload_experiment,
        )

        sessions = args.overload_sessions or DEFAULT_OVERLOAD_SESSIONS
        exp = run_overload_experiment(
            seed=args.seed, sessions=sessions,
            kind=args.config, scale=args.scale,
        )
        if args.json:
            print(json.dumps(exp, indent=2, sort_keys=True))
            return 0
        off, on = exp["governor_off"], exp["governor_on"]
        print(f"overload experiment: {exp['sessions']} sessions x "
              f"{exp['ops_per_session']} ops, seed={exp['seed']}, "
              f"config={args.config}")
        for label, arm in (("governor off", off), ("governor on", on)):
            print(f"  {label:13s} p50={arm['interactive_p50']:.6f}s "
                  f"p99={arm['interactive_p99']:.6f}s "
                  f"rejects={arm['interactive_rejects']} "
                  f"alert@{arm['first_alert_epoch']} "
                  f"reject-peak@{arm['reject_peak_epoch']}")
        print(f"  alert led rejects: {exp['alert_led_rejects']}")
        print(f"  p99 gain (off/on): {exp['p99_gain']:.2f}x "
              f"({exp['governor_sheds']} sheds)")
        return 0

    config = ServeConfig(
        seed=args.seed,
        tenants=default_tenants(sessions=args.sessions, ops=args.ops),
        monitor=default_monitor_spec(),
    )
    frontend = build_frontend(config, kind=args.config, scale=args.scale)
    report = frontend.run()
    monitor = frontend.monitor
    if args.json:
        print(dashboard_json(monitor))
        return 0
    sampler = monitor.sampler
    print(f"monitored serving run: config={args.config} "
          f"scale={args.scale} seed={args.seed}")
    print(f"  elapsed: {report.elapsed_seconds:.4f} simulated seconds, "
          f"{sampler.samples_taken} epochs sampled "
          f"(interval {monitor.spec.interval_seconds}s), "
          f"{len(sampler.series_names())} series")
    for name, tracker in sorted(monitor.trackers.items()):
        print(f"  slo {name:28s} compliance={tracker.compliance():.4f} "
              f"good={tracker.total_good} bad={tracker.total_bad}")
    if monitor.log.events:
        print("  alerts:")
        for event in monitor.log.events:
            print(f"    epoch {event.epoch:4d} {event.rule:32s} "
                  f"{event.state:8s} fast={event.burn_fast:.2f} "
                  f"slow={event.burn_slow:.2f}")
    else:
        print("  alerts: none fired")
    if args.prometheus:
        print()
        print(prometheus_text(frontend.metrics), end="")
    return 0


def _cmd_chaos(args) -> int:
    from repro.harness.chaos import run_chaos

    report = run_chaos(
        profile=args.profile,
        seed=args.seed,
        scale=args.scale,
        kind=args.config,
        queries=args.queries or None,
        oltp=True if args.oltp else None,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.verdict else 1

    d = report.as_dict()
    print(f"chaos sweep: profile={report.profile} seed={report.seed} "
          f"config={report.kind} scale={report.scale}")
    print(f"  queries: {report.matched} golden-identical, "
          f"{report.loud_errors} loud errors, "
          f"{report.silent_mismatches} silent mismatches")
    if report.oltp is not None:
        print(f"  oltp mix: match={report.oltp['match']} "
              f"commits={report.oltp['commits']}")
    active = {k: v for k, v in d["fault_counters"].items() if v}
    print(f"  faults injected: {report.fault_events} events {active}")
    rec = d["recovery"]
    print(f"  recovery: {rec['retries']} retries "
          f"({rec['retry_backoff_seconds']:.4f}s backoff), "
          f"{rec['corruptions_detected']} corruptions detected, "
          f"{rec['corruptions_repaired']} repaired, "
          f"{rec['unrepairable']} unrepairable, "
          f"{rec['tier_failovers']} tier failovers "
          f"({rec['blocks_remapped']} blocks remapped)")
    if report.scrubber is not None:
        s = report.scrubber
        print(f"  scrubber: {s['epochs']} epochs, "
              f"{s['blocks_scrubbed']} blocks audited, "
              f"{s['repairs']} repairs, {s['detections']} detections")
    if report.audit is not None:
        print(f"  integrity audit: clean={report.audit['clean']} "
              f"loud_or_pending={report.audit['loud_or_pending']}")
    print(f"  trace fingerprint: {report.trace_fingerprint}")
    print(f"  verdict: {'PASS' if report.verdict else 'FAIL'}")
    return 0 if report.verdict else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "explain": _cmd_explain,
        "experiment": _cmd_experiment,
        "sequence": _cmd_sequence,
        "placement": _cmd_placement,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "serve": _cmd_serve,
        "monitor": _cmd_monitor,
        "chaos": _cmd_chaos,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Global structures for concurrent priority assignment (Rule 5).

PostgreSQL being multi-process, the paper keeps a small shared-memory
region holding, for all running queries:

* a hash table ``H<oid, list<(level, count)>>`` — how many operators, at
  which plan levels, currently access each object (table or index);
* ``gl_low`` / ``gl_high`` — the global minimum ``llow`` / maximum ``lhigh``
  over the running queries' random-access operators.

All structures are updated on query start and end.  The priority of a
random request for object ``oid`` is computed by Equation (1) with the
global level bounds and the *minimum* level at which any running operator
accesses ``oid`` — i.e. the highest of the per-query priorities.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.priority import priority_for_level
from repro.storage.qos import PolicySet


@dataclass(frozen=True)
class RandomOperatorRef:
    """One random-access operator registered for the duration of a query."""

    oid: int
    level: int


class ConcurrencyRegistry:
    """Shared bookkeeping for Rule 5; also used for single queries."""

    def __init__(self) -> None:
        self._object_levels: dict[int, Counter] = defaultdict(Counter)
        self._query_ops: dict[int, list[RandomOperatorRef]] = {}
        self._query_bounds: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------ lifecycle

    def register_query(
        self, query_id: int, random_ops: list[RandomOperatorRef]
    ) -> None:
        """Record a starting query's random-access operators."""
        if query_id in self._query_ops:
            raise ValueError(f"query {query_id} already registered")
        self._query_ops[query_id] = list(random_ops)
        for op in random_ops:
            self._object_levels[op.oid][op.level] += 1
        if random_ops:
            levels = [op.level for op in random_ops]
            self._query_bounds[query_id] = (min(levels), max(levels))

    def unregister_query(self, query_id: int) -> None:
        """Remove a finished query's contribution."""
        ops = self._query_ops.pop(query_id, None)
        if ops is None:
            return
        self._query_bounds.pop(query_id, None)
        for op in ops:
            counter = self._object_levels[op.oid]
            counter[op.level] -= 1
            if counter[op.level] <= 0:
                del counter[op.level]
            if not counter:
                del self._object_levels[op.oid]

    # -------------------------------------------------------------- queries

    @property
    def active_queries(self) -> int:
        return len(self._query_ops)

    @property
    def gl_low(self) -> int | None:
        """Global lowest level over all running queries' random operators."""
        if not self._query_bounds:
            return None
        return min(low for low, _ in self._query_bounds.values())

    @property
    def gl_high(self) -> int | None:
        """Global highest level over all running queries' random operators."""
        if not self._query_bounds:
            return None
        return max(high for _, high in self._query_bounds.values())

    def min_level_for(self, oid: int) -> int | None:
        """Lowest level at which any running operator accesses ``oid``."""
        counter = self._object_levels.get(oid)
        if not counter:
            return None
        return min(counter)

    def priority_for(
        self,
        oid: int | None,
        policy_set: PolicySet,
        fallback_level: int | None = None,
    ) -> int:
        """Caching priority for a random request to ``oid`` (Rules 2 and 5).

        Falls back to ``fallback_level`` (the issuing operator's own level)
        when the object is not registered, and to the highest available
        random priority when no level information exists at all.
        """
        n1, n2 = policy_set.random_priority_range
        low, high = self.gl_low, self.gl_high
        if low is None or high is None:
            return n1
        level = self.min_level_for(oid) if oid is not None else None
        if level is None:
            level = fallback_level
        if level is None:
            return n1
        return priority_for_level(level, low, high, n1, n2)

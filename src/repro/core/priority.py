"""Equation (1): mapping an operator's plan level to a caching priority.

Random requests are mapped onto the consecutive priority range
``[n1, n2]``.  With ``Lgap = lhigh - llow`` the level spread of random
operators and ``Cprio = n2 - n1`` the size of the range::

    p(i) = n1                                  if Cprio = 0 or Lgap = 0
    p(i) = n1 + (i - llow)                     if Cprio >= Lgap
    p(i) = n1 + floor(Cprio * (i-llow)/Lgap)   if Cprio < Lgap

The last branch compresses deep plans onto the available priorities, so
operators at neighbouring levels may share one priority.
"""

from __future__ import annotations


def priority_for_level(
    level: int, llow: int, lhigh: int, n1: int, n2: int
) -> int:
    """Priority for a random-access operator at ``level``.

    ``llow``/``lhigh`` are the lowest/highest levels over all random-access
    operators in scope (one query plan, or the global registry under
    concurrency).  ``[n1, n2]`` is the available priority range.
    """
    if n2 < n1:
        raise ValueError(f"empty priority range [{n1}, {n2}]")
    if lhigh < llow:
        raise ValueError(f"invalid level range [{llow}, {lhigh}]")
    if not llow <= level <= lhigh:
        # Clamp defensively: a stale registry entry must not crash a query.
        level = min(max(level, llow), lhigh)

    c_prio = n2 - n1
    l_gap = lhigh - llow
    if c_prio == 0 or l_gap == 0:
        return n1
    if c_prio >= l_gap:
        return n1 + (level - llow)
    return n1 + (c_prio * (level - llow)) // l_gap

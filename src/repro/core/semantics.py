"""Semantic information attached to DBMS I/O (Sections 1.1 and 4.1).

A conventional storage manager strips everything except the physical shape
of a request (LBA, direction, size).  hStorage-DB keeps the pieces that
matter for placement:

* **content type** — regular table, index, or temporary data;
* **access pattern** — sequential or random, as decided by the optimizer;
* **plan level** — the (blocking-adjusted) level of the issuing operator in
  its query plan tree, which drives the priority of random requests;
* **lifetime events** — the deletion of temporary data (TRIM).

A :class:`SemanticInfo` travels from the executor through the buffer pool
into the storage manager, which maps it to a QoS policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ContentType(enum.Enum):
    """What kind of database object a request touches."""

    TABLE = "table"
    INDEX = "index"
    TEMP = "temp"
    LOG = "log"
    """Transaction-log data — the stream the paper's policy table gives
    the strongest treatment in the system (write-buffer, Table 3)."""


class AccessPattern(enum.Enum):
    """The optimizer-determined behaviour of the request stream."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class SemanticInfo:
    """Everything the storage manager needs to classify one request.

    ``level`` is the *effective* plan level of the issuing operator (after
    blocking-operator recalculation); it is only meaningful for random
    requests.  ``is_update`` marks writes from update statements / dirty
    page writeback of regular data.  ``is_delete`` marks the lifetime-end
    of temporary data (mapped to TRIM).
    """

    content_type: ContentType
    pattern: AccessPattern
    oid: int | None = None
    level: int | None = None
    query_id: int | None = None
    is_update: bool = False
    is_delete: bool = False
    is_migration: bool = False
    """Background tier migration issued by the adaptive-placement
    subsystem (DESIGN.md §11) — not query traffic; classified
    ``MIGRATE`` and mapped to the lowest QoS priority."""

    @classmethod
    def table_scan(cls, oid: int, query_id: int | None = None) -> "SemanticInfo":
        """Sequential scan over a regular table."""
        return cls(
            content_type=ContentType.TABLE,
            pattern=AccessPattern.SEQUENTIAL,
            oid=oid,
            query_id=query_id,
        )

    @classmethod
    def random_access(
        cls,
        content_type: ContentType,
        oid: int,
        level: int,
        query_id: int | None = None,
    ) -> "SemanticInfo":
        """Random access from an index-scan operator at ``level``."""
        return cls(
            content_type=content_type,
            pattern=AccessPattern.RANDOM,
            oid=oid,
            level=level,
            query_id=query_id,
        )

    @classmethod
    def temp_data(
        cls, oid: int | None = None, query_id: int | None = None
    ) -> "SemanticInfo":
        """Temporary data in its generation or consumption phase."""
        return cls(
            content_type=ContentType.TEMP,
            pattern=AccessPattern.SEQUENTIAL,
            oid=oid,
            query_id=query_id,
        )

    @classmethod
    def temp_delete(
        cls, oid: int | None = None, query_id: int | None = None
    ) -> "SemanticInfo":
        """End of a temporary file's lifetime (becomes TRIM)."""
        return cls(
            content_type=ContentType.TEMP,
            pattern=AccessPattern.SEQUENTIAL,
            oid=oid,
            query_id=query_id,
            is_delete=True,
        )

    @classmethod
    def log_write(
        cls, oid: int | None = None, query_id: int | None = None
    ) -> "SemanticInfo":
        """A write-ahead-log flush (sequential append; write-buffer QoS)."""
        return cls(
            content_type=ContentType.LOG,
            pattern=AccessPattern.SEQUENTIAL,
            oid=oid,
            query_id=query_id,
            is_update=True,
        )

    @classmethod
    def log_read(
        cls, oid: int | None = None, query_id: int | None = None
    ) -> "SemanticInfo":
        """A recovery-time sequential scan of the write-ahead log."""
        return cls(
            content_type=ContentType.LOG,
            pattern=AccessPattern.SEQUENTIAL,
            oid=oid,
            query_id=query_id,
        )

    @classmethod
    def migration(
        cls,
        content_type: ContentType = ContentType.TABLE,
        oid: int | None = None,
    ) -> "SemanticInfo":
        """Background block migration between tiers (no issuing query)."""
        return cls(
            content_type=content_type,
            pattern=AccessPattern.RANDOM,
            oid=oid,
            is_migration=True,
        )

    @classmethod
    def update(
        cls,
        content_type: ContentType,
        oid: int | None = None,
        query_id: int | None = None,
    ) -> "SemanticInfo":
        """A write of regular data (update stream / dirty writeback)."""
        return cls(
            content_type=content_type,
            pattern=AccessPattern.RANDOM,
            oid=oid,
            query_id=query_id,
            is_update=True,
        )

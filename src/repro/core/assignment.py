"""The storage manager's policy assignment table (Section 2).

The DBMS storage manager is extended with a table that maps each request,
according to its semantic information, to a QoS policy understood by the
storage system.  :class:`PolicyAssignmentTable` is that table: it binds the
advertised :class:`~repro.storage.qos.PolicySet`, the concurrency registry
and the rule engine, plus optional per-type overrides used by the ablation
benchmarks (e.g. "what if sequential requests were cached?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import ConcurrencyRegistry
from repro.core.rules import assign_policy
from repro.core.semantics import SemanticInfo
from repro.storage.qos import PolicySet, QoSPolicy
from repro.storage.requests import IOOp, RequestType


@dataclass
class PolicyAssignmentTable:
    """Maps semantic information to QoS policies via the paper's rules."""

    policy_set: PolicySet = field(default_factory=PolicySet)
    registry: ConcurrencyRegistry = field(default_factory=ConcurrencyRegistry)
    overrides: dict[RequestType, QoSPolicy] = field(default_factory=dict)
    enabled: bool = True
    """When False, requests are issued unclassified (legacy block traffic);
    this is how the LRU / HDD-only / SSD-only configurations run while the
    statistics layer still records the classification."""

    def assign(
        self, sem: SemanticInfo, op: IOOp
    ) -> tuple[QoSPolicy | None, RequestType]:
        """Policy + request type for one request.

        The request type is always computed (the evaluation reports
        classification breakdowns for every configuration); the policy is
        ``None`` when classification delivery is disabled.
        """
        policy, rtype = assign_policy(sem, op, self.policy_set, self.registry)
        if rtype in self.overrides:
            policy = self.overrides[rtype]
        if not self.enabled:
            return None, rtype
        return policy, rtype

    def admission_level(self, policy: QoSPolicy | None) -> int:
        """Tier admission band of a policy (0 = hottest tier).

        This is the table's second mapping: beyond choosing a QoS policy
        per request, it places each policy in the tier hierarchy — band 0
        belongs in the fastest tier of an N-tier chain, band 1 in any
        caching tier, band 2 in none (see
        :meth:`repro.storage.qos.PolicySet.admission_level`).
        """
        return self.policy_set.admission_level(policy)

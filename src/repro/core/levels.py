"""Plan-tree level computation with blocking-operator recalculation.

Levels follow Section 4.2.2: the root is on the highest level and the leaf
with the longest root distance is on Level 0.  A *blocking* operator (hash
build, sort, blocking aggregation) partitions execution into phases:
operators "at higher levels or its sibling ... cannot proceed unless it
finishes", and their levels are recalculated "as if this blocking operator
is at Level 0".

We implement this as **pipeline-segment normalisation**: cut the tree edge
above every blocking operator; each connected component (a pipeline
segment) renumbers its levels relative to the segment's own minimum.  This
reading reproduces the paper's worked examples exactly:

* Figure 2 — the hash at Level 4 leaves its own subtree untouched (the
  random t.b operator keeps Level 2) while "the other two operators on
  Level 4 and 5 are re-calculated as on Level 0 and 1";
* Q9 (Figure 7) — the supplier index scan lands one level below the
  orders index scan, yielding Priorities 2 and 3 (Table 5);
* Q21 (Figure 8) — the orders index scan lands below the lineitem index
  scan despite the intervening hash builds (Table 6).

The module works on any tree whose nodes expose ``children`` (a sequence)
and ``is_blocking`` (a bool), so it has no dependency on the DBMS layer.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence, runtime_checkable


@runtime_checkable
class PlanLike(Protocol):
    """Minimal structural interface for level computation."""

    @property
    def children(self) -> Sequence["PlanLike"]: ...

    @property
    def is_blocking(self) -> bool: ...


def iter_nodes(root: PlanLike) -> Iterator[PlanLike]:
    """Pre-order traversal of the plan tree."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(node.children)))


def compute_raw_levels(root: PlanLike) -> dict[int, int]:
    """Raw level per node (keyed by ``id(node)``).

    ``level(node) = max_depth - depth(node)`` so the deepest leaf is at
    Level 0 and the root at the highest level.
    """
    depths: dict[int, int] = {}
    order: list[PlanLike] = []
    stack: list[tuple[PlanLike, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        depths[id(node)] = depth
        order.append(node)
        for child in node.children:
            stack.append((child, depth + 1))
    max_depth = max(depths.values())
    return {nid: max_depth - d for nid, d in depths.items()}


def compute_effective_levels(root: PlanLike) -> dict[int, int]:
    """Blocking-adjusted level per node (keyed by ``id(node)``).

    Each node belongs to the segment of its nearest blocking ancestor
    (itself included — a blocking operator heads the segment made of its
    own subtree); nodes with no blocking ancestor form the root segment.
    A node's effective level is its raw level minus the minimum raw level
    within its segment, so every post-blocking phase restarts at Level 0.
    """
    raw = compute_raw_levels(root)

    # Assign segment ids: DFS carrying the nearest enclosing blocking node.
    segment_of: dict[int, int] = {}
    segment_min: dict[int, int] = {}
    stack: list[tuple[PlanLike, int]] = [(root, id(root))]
    while stack:
        node, segment = stack.pop()
        nid = id(node)
        if node.is_blocking:
            segment = nid  # the blocking node heads its subtree's segment
        segment_of[nid] = segment
        level = raw[nid]
        current = segment_min.get(segment)
        if current is None or level < current:
            segment_min[segment] = level
        for child in node.children:
            stack.append((child, segment))

    return {
        nid: raw[nid] - segment_min[segment_of[nid]]
        for nid in raw
    }


def level_of(levels: dict[int, int], node: PlanLike) -> int:
    """Convenience accessor for a node's computed level."""
    return levels[id(node)]

"""hStorage-DB core: semantic classification and QoS policy assignment.

This package is the paper's primary contribution — the machinery that
bridges the semantic gap between the DBMS and the storage system:

* :mod:`repro.core.semantics` — the semantic information model;
* :mod:`repro.core.classify` — request classification (Section 4.1);
* :mod:`repro.core.levels` — plan levels + blocking-operator recalculation;
* :mod:`repro.core.priority` — Equation (1);
* :mod:`repro.core.rules` — Rules 1–5 (Table 1);
* :mod:`repro.core.registry` — shared state for concurrent queries (Rule 5);
* :mod:`repro.core.assignment` — the storage manager's policy table.
"""

from repro.core.assignment import PolicyAssignmentTable
from repro.core.classify import classify
from repro.core.levels import (
    compute_effective_levels,
    compute_raw_levels,
    iter_nodes,
    level_of,
)
from repro.core.priority import priority_for_level
from repro.core.registry import ConcurrencyRegistry, RandomOperatorRef
from repro.core.rules import assign_policy
from repro.core.semantics import AccessPattern, ContentType, SemanticInfo

__all__ = [
    "AccessPattern",
    "ConcurrencyRegistry",
    "ContentType",
    "PolicyAssignmentTable",
    "RandomOperatorRef",
    "SemanticInfo",
    "assign_policy",
    "classify",
    "compute_effective_levels",
    "compute_raw_levels",
    "iter_nodes",
    "level_of",
    "priority_for_level",
]

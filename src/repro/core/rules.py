"""The five policy-assignment rules (Section 4, Table 1).

=============================  ==============  ======
Request type                   Priority        Rule
=============================  ==============  ======
temporary data requests        1               Rule 3
random requests                2 .. N-2        Rules 2, 5
sequential requests            N-1             Rule 1
TRIM to temporary data         N               Rule 3
updates                        write buffer    Rule 4
=============================  ==============  ======

Rule 1  — sequential requests get "non-caching and non-eviction": HDDs
serve sequential streams at SSD-comparable bandwidth, so caching them
wastes SSD capacity.

Rule 2  — random requests get priorities by plan level through
Equation (1): operators lower in the (blocking-adjusted) plan tree get
higher priorities.

Rule 3  — temporary data is cached at the highest priority during its
lifetime and TRIMmed (non-caching and eviction) at its end.

Rule 4  — updates go to the write buffer so they never touch the HDD
synchronously.

Rule 5  — under concurrency, random requests to a shared object take the
highest priority any running query would give it, via the global registry.

Beyond the five query rules, the paper's policy table (Table 3) assigns
*transaction log data* the write-buffer policy — the strongest treatment
in the system.  WAL flushes therefore classify as ``RequestType.LOG`` and
map to the write buffer; recovery's sequential log reads share the class
but take the non-caching sequential policy (a one-pass stream must not
displace cached data).
"""

from __future__ import annotations

from repro.core.classify import classify
from repro.core.registry import ConcurrencyRegistry
from repro.core.semantics import SemanticInfo
from repro.storage.qos import PolicySet, QoSPolicy
from repro.storage.requests import IOOp, RequestType


def assign_policy(
    sem: SemanticInfo,
    op: IOOp,
    policy_set: PolicySet,
    registry: ConcurrencyRegistry,
) -> tuple[QoSPolicy, RequestType]:
    """Map one request's semantics to (QoS policy, request type)."""
    rtype = classify(sem, op)

    if rtype is RequestType.MIGRATE:
        # Background migration (DESIGN.md §11): the lowest priority in
        # the system — placement happens through the tier chain's
        # explicit promote/demote APIs, never by winning cache space
        # from foreground traffic.
        return policy_set.migration_policy(), rtype
    if rtype is RequestType.LOG:
        # Table 3: transaction log *writes* get the strongest policy in
        # the system — the write buffer — so commits never wait on the
        # HDD.  Recovery's sequential log reads are one-pass streams; like
        # Rule 1 traffic they must not displace cached data.
        if op is IOOp.WRITE:
            return policy_set.update_policy(), rtype
        return policy_set.sequential_policy(), rtype
    if rtype is RequestType.TRIM_TEMP:
        return policy_set.eviction_policy(), rtype  # Rule 3 (lifetime end)
    if rtype in (RequestType.TEMP_READ, RequestType.TEMP_WRITE):
        return policy_set.temp_policy(), rtype  # Rule 3
    if rtype is RequestType.UPDATE:
        return policy_set.update_policy(), rtype  # Rule 4
    if rtype is RequestType.SEQUENTIAL:
        return policy_set.sequential_policy(), rtype  # Rule 1
    # Rule 2 within one query; Rule 5 resolves concurrent plans.
    priority = registry.priority_for(
        sem.oid, policy_set, fallback_level=sem.level
    )
    return QoSPolicy.with_priority(priority), rtype

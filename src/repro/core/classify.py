"""Request classification (Section 4.1).

Maps :class:`~repro.core.semantics.SemanticInfo` plus the I/O direction to
one of the paper's request types: sequential, random, temporary data,
update — plus the TRIM of deleted temporary data.
"""

from __future__ import annotations

from repro.core.semantics import AccessPattern, ContentType, SemanticInfo
from repro.storage.requests import IOOp, RequestType


def classify(sem: SemanticInfo, op: IOOp) -> RequestType:
    """Classify one request.

    Precedence mirrors the paper's rules: the lifetime event (delete) and
    content type (temporary data) dominate, then update writes, then the
    optimizer's access pattern.
    """
    if sem.is_migration:
        # Background tier migration outranks everything: it is storage
        # maintenance, never query traffic, whatever it moves.
        return RequestType.MIGRATE
    if op is IOOp.TRIM or sem.is_delete:
        return RequestType.TRIM_TEMP
    if sem.content_type is ContentType.LOG:
        # Transaction-log data keeps its identity in both directions: WAL
        # flushes are the write-buffer stream of the paper's Table 3, and
        # recovery's sequential log scan is reported under the same class.
        return RequestType.LOG
    if sem.content_type is ContentType.TEMP:
        return (
            RequestType.TEMP_WRITE if op is IOOp.WRITE else RequestType.TEMP_READ
        )
    if op is IOOp.WRITE:
        return RequestType.UPDATE
    # Reads issued while executing an update statement (index descents,
    # heap lookups) are ordinary random/sequential reads; only the writes
    # themselves are "update requests" in the paper's sense (Rule 4).
    if sem.pattern is AccessPattern.SEQUENTIAL:
        return RequestType.SEQUENTIAL
    return RequestType.RANDOM

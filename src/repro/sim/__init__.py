"""Discrete simulation support: clock and tunable parameters.

The simulator replaces the paper's physical testbed (two Xeon machines,
iSCSI, Intel Open Storage Toolkit).  All timing knobs live in
:class:`~repro.sim.params.SimulationParameters`; simulated time is kept by
:class:`~repro.sim.clock.SimClock`.
"""

from repro.sim.clock import SimClock
from repro.sim.params import SimulationParameters

__all__ = ["SimClock", "SimulationParameters"]

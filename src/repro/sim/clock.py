"""Simulated wall clock.

All "execution times" reported by the reproduction are simulated seconds
accumulated on a :class:`SimClock`.  Two accumulators exist:

* ``now`` — foreground time: I/O service time on the critical path plus
  modelled CPU time.  This is what corresponds to the paper's measured
  query execution times.
* ``background`` — time charged for work that the paper's storage system
  performs off the critical path (asynchronous dirty-block eviction and
  write-buffer flushes).  It is reported separately so experiments can
  verify that background traffic stays reasonable.
"""

from __future__ import annotations


class SimClock:
    """Monotonically increasing simulated clock (seconds, float).

    Foreground time is kept in two accumulators — I/O service time
    (:meth:`advance`) and modelled CPU time (:meth:`advance_cpu`) — summed
    on read.  Keeping them separate makes ``now`` independent of how CPU
    charges interleave with I/O charges, which is what lets the vectorized
    executor regroup per-row CPU work into batches while producing
    bit-identical simulated timings (DESIGN.md §7).  The same separation,
    together with ``ExecutionContext.cpu_tick`` releasing CPU charges in
    fixed 512-tuple chunks, is what extends the invariance to the push
    executor's morsel-sized regrouping: all three executor modes (row,
    vectorized, push) leave identical accumulator states at every I/O
    submission point (DESIGN.md §12).
    """

    __slots__ = ("_now", "_cpu", "_background")

    def __init__(self) -> None:
        self._now = 0.0
        self._cpu = 0.0
        self._background = 0.0

    @property
    def now(self) -> float:
        """Current foreground simulated time in seconds."""
        return self._now + self._cpu

    @property
    def background(self) -> float:
        """Total background (asynchronous) device time in seconds."""
        return self._background

    @property
    def io_seconds(self) -> float:
        """Foreground I/O service time alone (profiling breakdowns)."""
        return self._now

    @property
    def cpu_seconds(self) -> float:
        """Foreground modelled-CPU time alone (profiling breakdowns)."""
        return self._cpu

    def advance(self, seconds: float) -> None:
        """Advance foreground I/O time; ``seconds`` must be non-negative."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds

    def advance_cpu(self, seconds: float) -> None:
        """Advance foreground modelled-CPU time (separate accumulator)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._cpu += seconds

    def charge_background(self, seconds: float) -> None:
        """Account asynchronous device time (not on the critical path)."""
        if seconds < 0:
            raise ValueError(f"cannot charge {seconds!r} background seconds")
        self._background += seconds

    def elapsed_since(self, start: float) -> float:
        """Foreground seconds elapsed since a previously sampled ``now``."""
        return self.now - start

    def reset(self) -> None:
        """Zero all accumulators (used between independent experiments)."""
        self._now = 0.0
        self._cpu = 0.0
        self._background = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now:.6f}, background={self._background:.6f})"

"""All simulator tunables in one frozen dataclass.

Defaults are derived from the paper's hardware (Section 6.1):

* HDD: Seagate Cheetah 15.7K RPM 300 GB — ~150 MB/s sequential transfer,
  ~5.5 ms per random read (avg seek + half-rotation at 15 000 RPM),
  ~6.0 ms per random write.
* SSD: Intel 320 Series 300 GB — Table 2 of the paper: 270 / 205 MB/s
  sequential read/write, 39.5 K / 23 K random read/write IOPS.

The two behavioural knobs that are *not* direct hardware numbers are:

* ``alloc_overlap`` — the fraction of an SSD cache-fill write charged on the
  critical path of a synchronous read allocation.  The paper observed LRU
  slowing sequential scans down by 16–25 % versus HDD-only (Section 6.3.1);
  a partially overlapped fill (default 0.30) reproduces that band without
  per-query tuning.
* ``cpu_us_per_tuple`` — modelled CPU cost per tuple processed, so that
  scan-dominated queries are not purely I/O bound (the paper notes the SSD
  advantage is "not obvious" for sequential queries).
"""

from __future__ import annotations

from dataclasses import dataclass

_MB = 1000 * 1000


@dataclass(frozen=True)
class SimulationParameters:
    """Tunable constants for the storage/DBMS simulation."""

    block_size: int = 8192
    """Bytes per block; one block == one DBMS page (PostgreSQL default)."""

    # --- HDD model (Seagate Cheetah 15.7K) ---------------------------------
    hdd_seq_read_mb_s: float = 150.0
    hdd_seq_write_mb_s: float = 150.0
    hdd_rand_read_ms: float = 5.5
    hdd_rand_write_ms: float = 6.0

    # --- SSD model (Intel 320 Series, Table 2 of the paper) ----------------
    ssd_seq_read_mb_s: float = 270.0
    ssd_seq_write_mb_s: float = 205.0
    ssd_rand_read_iops: float = 39_500.0
    ssd_rand_write_iops: float = 23_000.0

    # --- NVMe model (HOT tier of the three-tier configurations) ------------
    nvme_seq_read_mb_s: float = 2500.0
    nvme_seq_write_mb_s: float = 1800.0
    nvme_rand_read_iops: float = 400_000.0
    nvme_rand_write_iops: float = 250_000.0

    # --- cache behaviour ----------------------------------------------------
    alloc_overlap: float = 0.30
    """Fraction of the SSD fill-write charged synchronously on read allocation."""

    sync_dirty_eviction: bool = False
    """If True, dirty-victim writebacks block the request (paper: async)."""

    # --- DBMS cost model ----------------------------------------------------
    cpu_us_per_tuple: float = 0.8
    """Simulated CPU microseconds charged per tuple produced by an operator."""

    read_ahead_pages: int = 32
    """Pages batched into one I/O request by sequential scans."""

    writeback_queue_depth: int = 8
    """Asynchronous writes parked in the I/O scheduler before an elevator
    drain merges and dispatches them (DESIGN.md §4)."""

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0.0 <= self.alloc_overlap <= 1.0:
            raise ValueError("alloc_overlap must be within [0, 1]")
        if self.cpu_us_per_tuple < 0:
            raise ValueError("cpu_us_per_tuple must be non-negative")
        if self.read_ahead_pages < 1:
            raise ValueError("read_ahead_pages must be >= 1")
        if self.writeback_queue_depth < 1:
            raise ValueError("writeback_queue_depth must be >= 1")
        for field in (
            "hdd_seq_read_mb_s",
            "hdd_seq_write_mb_s",
            "hdd_rand_read_ms",
            "hdd_rand_write_ms",
            "ssd_seq_read_mb_s",
            "ssd_seq_write_mb_s",
            "ssd_rand_read_iops",
            "ssd_rand_write_iops",
            "nvme_seq_read_mb_s",
            "nvme_seq_write_mb_s",
            "nvme_rand_read_iops",
            "nvme_rand_write_iops",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    # --- derived per-block service times (seconds) -------------------------

    @property
    def hdd_seq_read_s(self) -> float:
        return self.block_size / (self.hdd_seq_read_mb_s * _MB)

    @property
    def hdd_seq_write_s(self) -> float:
        return self.block_size / (self.hdd_seq_write_mb_s * _MB)

    @property
    def hdd_rand_read_s(self) -> float:
        return self.hdd_rand_read_ms / 1000.0

    @property
    def hdd_rand_write_s(self) -> float:
        return self.hdd_rand_write_ms / 1000.0

    @property
    def ssd_seq_read_s(self) -> float:
        return self.block_size / (self.ssd_seq_read_mb_s * _MB)

    @property
    def ssd_seq_write_s(self) -> float:
        return self.block_size / (self.ssd_seq_write_mb_s * _MB)

    @property
    def ssd_rand_read_s(self) -> float:
        return 1.0 / self.ssd_rand_read_iops

    @property
    def ssd_rand_write_s(self) -> float:
        return 1.0 / self.ssd_rand_write_iops

    @property
    def nvme_seq_read_s(self) -> float:
        return self.block_size / (self.nvme_seq_read_mb_s * _MB)

    @property
    def nvme_seq_write_s(self) -> float:
        return self.block_size / (self.nvme_seq_write_mb_s * _MB)

    @property
    def nvme_rand_read_s(self) -> float:
        return 1.0 / self.nvme_rand_read_iops

    @property
    def nvme_rand_write_s(self) -> float:
        return 1.0 / self.nvme_rand_write_iops

    @property
    def cpu_s_per_tuple(self) -> float:
        return self.cpu_us_per_tuple / 1_000_000.0

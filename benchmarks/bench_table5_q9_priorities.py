"""Table 5: Q9's per-priority cache statistics under hStorage-DB."""

from conftest import compute_once, publish

from repro.harness.experiments import fig6_random, table5_q9_priorities


def test_table5_q9_priority_stats(benchmark, runner, shared_cache):
    fig6 = compute_once(shared_cache, "fig6", lambda: fig6_random(runner))
    result = benchmark.pedantic(
        lambda: table5_q9_priorities(runner, fig6), rounds=1, iterations=1
    )
    publish("table5_q9_priorities", result.render())

    rows = result.sections["hstorage"]
    by_label = {row.label: row for row in rows}
    # Two distinct priorities are assigned (supplier deeper than orders).
    assert len(by_label) == 2
    # The bulk random traffic (orders) is served with a high hit ratio
    # (paper: 89%).
    bulk = max(rows, key=lambda r: r.blocks)
    assert bulk.blocks > 0
    assert bulk.ratio > 0.6, bulk

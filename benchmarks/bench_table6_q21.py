"""Table 6: Q21's cache statistics, hStorage-DB vs LRU."""

from conftest import compute_once, publish

from repro.harness.experiments import fig6_random, table6_q21


def test_table6_q21_stats(benchmark, runner, shared_cache):
    fig6 = compute_once(shared_cache, "fig6", lambda: fig6_random(runner))
    result = benchmark.pedantic(
        lambda: table6_q21(runner, fig6), rounds=1, iterations=1
    )
    publish("table6_q21", result.render())

    hst = {row.label: row for row in result.sections["hstorage"]}
    lru = {row.label: row for row in result.sections["lru"]}

    # Both deliver a high hit ratio for the top random priority (orders).
    top = [l for l in hst if l.startswith("Priority")][0]
    assert hst[top].ratio > 0.5
    assert lru[top].ratio > 0.5
    # But LRU beats hStorage-DB on the lineitem-related classes
    # (Section 6.3.2): the lower priority and the sequential blocks.
    low = [l for l in hst if l.startswith("Priority")][1]
    assert lru[low].ratio > hst[low].ratio
    assert lru["Sequential"].ratio > hst["Sequential"].ratio

"""Ablation: the number of priorities N in the policy set {N, t, b}.

With few priorities, random requests from different plan levels collapse
into one class and selective eviction loses its ordering information;
Equation (1)'s compression branch handles plans deeper than the range.
This ablation runs Q21 (two distinct random classes in the paper) under
several N and reports the priorities observed.
"""

from conftest import publish

from repro.harness.configs import build_database
from repro.harness.report import format_table
from repro.storage.qos import PolicySet
from repro.tpch.queries import query_builder
from repro.tpch.workload import load_tpch


def _run(runner, n: int):
    config = runner.config("hstorage", runner.settings.scale)
    config = config.with_(policy_set=PolicySet(n_priorities=n))
    db = build_database(config)
    load_tpch(db, data=runner.data(runner.settings.scale))
    result = db.run_query(query_builder(21), label="Q21", collect=False)
    priorities = sorted(result.stats.by_priority)
    return result.sim_seconds, priorities


def test_ablation_priority_count(benchmark, runner):
    ns = (4, 7, 12)

    def experiment():
        return {n: _run(runner, n) for n in ns}

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    publish(
        "ablation_priorities",
        format_table(
            ["N", "Q21 (s)", "random priorities used"],
            [[n, v[0], str(v[1])] for n, v in outcome.items()],
            "Ablation — priority count N",
        ),
    )
    # N=4 leaves a single random priority (range [2, 2]): classes collapse.
    assert len(outcome[4][1]) == 1
    # The default N=7 separates the two random classes of Q21.
    assert len(outcome[7][1]) == 2

"""Figure 11: per-query times when packed into one power-test sequence."""

from conftest import compute_once, publish

from repro.harness.experiments import fig11_table8_sequence


def test_fig11_power_sequence(benchmark, runner, shared_cache):
    result = benchmark.pedantic(
        lambda: compute_once(
            shared_cache, "sequence", lambda: fig11_table8_sequence(runner)
        ),
        rounds=1,
        iterations=1,
    )
    publish("fig11_power_sequence", result.render())

    # hStorage-DB shows clear improvements for most queries (paper §6.3.4).
    improved = sum(
        1
        for label, per in result.per_query.items()
        if per["hstorage"] < per["hdd"] * 0.95
    )
    assert improved >= 8, f"only {improved} steps improved"
    # ... and it never blows up a query catastrophically.
    for label, per in result.per_query.items():
        assert per["hstorage"] < per["hdd"] * 2.0 + 0.5, label

"""Serving front-end benchmark: determinism, fairness, QoS isolation
(ISSUE 9).

Three measurements of the multi-tenant serving layer (DESIGN.md §15):

* **determinism** — the same :class:`~repro.serve.ServeConfig` (seed
  included) on two freshly built databases must produce byte-identical
  serving reports (gate ``serve_deterministic``, floor 1.0);
* **weighted fairness** — under saturation (admission wide open, every
  class always runnable) each class's share of scheduler quanta over the
  all-classes-active window must land within 10 % of its weight share
  (gate ``fair_share`` records ``1 - max relative deviation``, floor
  0.9), and at least three QoS classes must collect real latency samples
  (gate ``qos_classes``, floor 3);
* **isolation** — under the same mixed load, the interactive class's p99
  operation latency must sit strictly below the batch class's p99 (gate
  ``interactive_isolation``, floor 1.0).

Results go to results/serving.{txt,json}; full-fidelity runs also
refresh the repo-root ``BENCH_PR9.json`` trajectory artifact, whose
per-class and per-tenant latency blocks
``benchmarks/check_trajectory.py`` schema-validates.
"""

from __future__ import annotations

from conftest import (
    BENCH_SCALE,
    envelope,
    publish,
    publish_envelope,
    write_trajectory,
)

from repro.harness.report import format_table
from repro.serve import ClassSpec, ServeConfig, TenantSpec, run_serving

SERVE_SCALE = max(0.02, round(0.05 * BENCH_SCALE, 3))
SEED = 11
OPS_PER_SESSION = 80
"""Not shrunk for smoke runs: the fair-share gate needs a long enough
all-classes-active window for quantum shares to resolve within 10 %
(the run itself costs well under a second at any scale)."""
SESSIONS_PER_TENANT = 2

#: Saturated mix: rate limits and queue depths wide open so every class
#: has runnable work until its sessions drain — the regime in which the
#: stride scheduler's quantum shares must converge to the weights.
CLASSES = tuple(
    ClassSpec(
        name=name,
        weight=weight,
        rate_ops_per_second=1e6,
        burst_ops=1000,
        max_inflight=64,
        max_deferrals=1000,
        think_seconds=1e-6,
        op_kind=kind,
    )
    for name, weight, kind in (
        ("interactive", 8.0, "point"),
        ("batch", 2.0, "scan"),
        ("background", 1.0, "sweep"),
    )
)
TENANTS = tuple(
    TenantSpec(
        name=f"t-{spec.name}",
        service_class=spec.name,
        sessions=SESSIONS_PER_TENANT,
        ops_per_session=OPS_PER_SESSION,
    )
    for spec in CLASSES
)


def _config() -> ServeConfig:
    return ServeConfig(seed=SEED, classes=CLASSES, tenants=TENANTS)


def _fairness(report) -> tuple[float, dict]:
    """``1 - max relative deviation`` of quantum share vs weight share."""
    shares = {
        name: cls["saturated_quanta"] for name, cls in report.classes.items()
    }
    total = sum(shares.values())
    weight_total = sum(cls["weight"] for cls in report.classes.values())
    detail = {}
    worst = 0.0
    for name, cls in report.classes.items():
        share = shares[name] / total if total else 0.0
        expected = cls["weight"] / weight_total
        deviation = abs(share - expected) / expected
        worst = max(worst, deviation)
        detail[name] = {
            "quanta_share": share,
            "weight_share": expected,
            "relative_deviation": deviation,
        }
    return 1.0 - worst, detail


def test_serving(benchmark):
    def experiment():
        first = run_serving(_config(), scale=SERVE_SCALE)
        second = run_serving(_config(), scale=SERVE_SCALE)
        return first, second.to_json()

    report, replay_json = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    deterministic = report.to_json() == replay_json
    fair_share, fairness = _fairness(report)
    qos_classes = sum(
        1
        for cls in report.classes.values()
        if cls["latency"]["count"] > 0
    )
    interactive_p99 = report.classes["interactive"]["latency"]["p99"]
    batch_p99 = report.classes["batch"]["latency"]["p99"]
    isolated = interactive_p99 < batch_p99

    rows = [
        [
            name,
            f"{cls['weight']:.0f}",
            cls["saturated_quanta"],
            f"{fairness[name]['quanta_share']:.3f}",
            f"{fairness[name]['weight_share']:.3f}",
            cls["ops_completed"],
            f"{cls['latency']['p50'] * 1e3:.3f}",
            f"{cls['latency']['p95'] * 1e3:.3f}",
            f"{cls['latency']['p99'] * 1e3:.3f}",
        ]
        for name, cls in sorted(report.classes.items())
    ]
    publish(
        "serving",
        format_table(
            ["class", "w", "quanta", "share", "target", "ops",
             "p50 ms", "p95 ms", "p99 ms"],
            rows,
            "Serving QoS: saturated quantum shares vs weights "
            f"(deterministic={deterministic}, "
            f"interactive p99 {'<' if isolated else '>='} batch p99)",
        ),
    )

    gates = {
        "serve_deterministic": (1.0 if deterministic else 0.0, 1.0),
        "qos_classes": (float(qos_classes), 3.0),
        "fair_share": (fair_share, 0.9),
        "interactive_isolation": (1.0 if isolated else 0.0, 1.0),
    }
    payload = {
        "scale": SERVE_SCALE,
        "seed": SEED,
        "ops_per_session": OPS_PER_SESSION,
        "sessions_per_tenant": SESSIONS_PER_TENANT,
        "elapsed_seconds": report.elapsed_seconds,
        "fairness": fairness,
        "serving": {
            "classes": report.classes,
            "tenants": report.tenants,
        },
        "scheduler": report.scheduler,
    }
    env = envelope("serving", pr=9, payload=payload, gates=gates)
    publish_envelope(env)
    write_trajectory(env)

    assert deterministic
    assert qos_classes >= 3
    assert fair_share >= 0.9
    assert isolated

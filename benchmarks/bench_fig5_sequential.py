"""Figure 5: execution times of sequential-request queries (Q1/Q5/Q11/Q19)."""

from conftest import compute_once, publish

from repro.harness.experiments import fig5_sequential


def test_fig5_sequential_queries(benchmark, runner, shared_cache):
    result = benchmark.pedantic(
        lambda: compute_once(
            shared_cache, "fig5", lambda: fig5_sequential(runner)
        ),
        rounds=1,
        iterations=1,
    )
    publish("fig5_sequential", result.render())

    for qid, per in result.seconds.items():
        # (1) The SSD advantage is "not obvious" for sequential queries.
        assert per["hdd"] / per["ssd"] < 3.0, qid
        # (2) LRU pays an allocation overhead over HDD-only (paper: 16-25%).
        assert per["lru"] > per["hdd"] * 1.02, qid
        # (3) hStorage-DB avoids that overhead (Rule 1): within 2% of HDD.
        assert per["hstorage"] <= per["hdd"] * 1.02, qid

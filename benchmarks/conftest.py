"""Shared fixtures for the benchmark harness.

Scale can be lowered for smoke runs: ``REPRO_BENCH_SCALE=0.2 pytest
benchmarks/ --benchmark-only``.  Experiment outputs are printed and also
written to ``benchmarks/results/`` so figures/tables survive the run.

Expensive experiments are computed once per session and shared between
the figure bench and its dependent table benches (e.g. Figure 6 feeds
Tables 5 and 6), mirroring how the paper derives tables from the same
runs.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.harness import ExperimentRunner, RunnerSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return ExperimentRunner(RunnerSettings(scale=scale))


@pytest.fixture(scope="session")
def shared_cache() -> dict:
    """Session-wide memo for experiment results shared across benches."""
    return {}


def compute_once(cache: dict, key: str, fn):
    if key not in cache:
        cache[key] = fn()
    return cache[key]


def publish(name: str, text: str) -> None:
    """Print a rendered experiment and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def publish_json(name: str, payload) -> pathlib.Path:
    """Persist a machine-readable experiment result under results/.

    CI smoke runs assert that the JSON exists and parses; downstream
    tooling (regression dashboards, PR descriptions) reads it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

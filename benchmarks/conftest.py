"""Shared fixtures for the benchmark harness.

Scale can be lowered for smoke runs: ``REPRO_BENCH_SCALE=0.2 pytest
benchmarks/ --benchmark-only``.  Experiment outputs are printed and also
written to ``benchmarks/results/`` so figures/tables survive the run.

Expensive experiments are computed once per session and shared between
the figure bench and its dependent table benches (e.g. Figure 6 feeds
Tables 5 and 6), mirroring how the paper derives tables from the same
runs.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.harness import ExperimentRunner, RunnerSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

ENVELOPE_SCHEMA = "repro-bench/v1"
"""Every machine-readable benchmark artifact (``results/*.json`` written
through :func:`publish_envelope` and the repo-root ``BENCH_PR<n>.json``
trajectory files) shares one top-level shape::

    {
      "schema": "repro-bench/v1",
      "bench":  "<benchmark name>",
      "pr":     <int>,                      # the PR that gated on it
      "gates":  {"<name>": {"value": <float>, "floor": <float>}, ...},
      "payload": {...}                      # bench-specific content
    }

``gates`` records every speedup/threshold the PR was accepted against;
``benchmarks/check_trajectory.py`` re-validates each artifact and fails
if a recorded value regresses below its floor."""


def pytest_addoption(parser):
    parser.addoption(
        "--executor",
        action="store",
        default=None,
        choices=("row", "vectorized", "push"),
        help="restrict executor benchmarks to one mode "
        "(default: compare all modes)",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="wrap measured benchmark runs in cProfile and add the "
        "top-20 cumulative hotspots to the JSON artifact",
    )


@pytest.fixture(scope="session")
def bench_options(request) -> dict:
    """CLI axes for executor benchmarks (see ``pytest_addoption``)."""
    return {
        "executor": request.config.getoption("--executor"),
        "profile": request.config.getoption("--profile"),
    }


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return ExperimentRunner(RunnerSettings(scale=scale))


@pytest.fixture(scope="session")
def shared_cache() -> dict:
    """Session-wide memo for experiment results shared across benches."""
    return {}


def compute_once(cache: dict, key: str, fn):
    if key not in cache:
        cache[key] = fn()
    return cache[key]


def publish(name: str, text: str) -> None:
    """Print a rendered experiment and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def publish_json(name: str, payload) -> pathlib.Path:
    """Persist a machine-readable experiment result under results/.

    CI smoke runs assert that the JSON exists and parses; downstream
    tooling (regression dashboards, PR descriptions) reads it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def envelope(bench: str, pr: int, payload, gates: dict | None = None) -> dict:
    """Wrap a bench payload in the :data:`ENVELOPE_SCHEMA` shape.

    ``gates`` maps gate name to ``(value, floor)``.
    """
    return {
        "schema": ENVELOPE_SCHEMA,
        "bench": bench,
        "pr": pr,
        "gates": {
            name: {"value": value, "floor": floor}
            for name, (value, floor) in (gates or {}).items()
        },
        "payload": payload,
    }


def publish_envelope(env: dict) -> pathlib.Path:
    """Persist an enveloped result under results/ (named after the bench)."""
    return publish_json(env["bench"], env)


def write_trajectory(env: dict) -> None:
    """Write ``BENCH_PR<n>.json`` at the repo root — the artifact a PR's
    acceptance gates were measured against.

    Only full-fidelity runs may overwrite it: shrunken smoke runs
    (``REPRO_BENCH_SCALE < 1``) would record noise-dominated gate values
    that the trajectory check then treats as regressions.
    """
    if BENCH_SCALE < 1.0:
        return
    path = REPO_ROOT / f"BENCH_PR{env['pr']}.json"
    path.write_text(json.dumps(env, indent=2, sort_keys=True) + "\n")

#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by ``repro trace``.

CI runs the trace CLI with ``--chrome`` and feeds the output here; the
check fails if the file does not parse or violates the trace_event
schema (see :func:`repro.obs.trace.validate_chrome`), so the artifact
stays loadable in Perfetto / ``chrome://tracing``.

Usage: ``python benchmarks/check_chrome_trace.py TRACE.json [...]``
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "traces", nargs="+", type=pathlib.Path,
        help="Chrome trace_event JSON file(s) to validate",
    )
    args = parser.parse_args(argv)

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )
    from repro.obs.trace import validate_chrome

    failed = False
    for path in args.traces:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL: {path}: unreadable ({exc})", file=sys.stderr)
            failed = True
            continue
        problems = validate_chrome(data)
        if problems:
            failed = True
            for problem in problems:
                print(f"FAIL: {path}: {problem}", file=sys.stderr)
            continue
        events = (
            data["traceEvents"] if isinstance(data, dict) else data
        )
        spans = sum(1 for e in events if e.get("ph") == "X")
        print(f"ok: {path} ({len(events)} event(s), {spans} span(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

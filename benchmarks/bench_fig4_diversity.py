"""Figure 4: diversity of request types across the 22 TPC-H queries."""

from conftest import compute_once, publish

from repro.harness.experiments import fig4_diversity


def test_fig4_request_diversity(benchmark, runner, shared_cache):
    result = benchmark.pedantic(
        lambda: compute_once(
            shared_cache, "fig4", lambda: fig4_diversity(runner)
        ),
        rounds=1,
        iterations=1,
    )
    publish("fig4_diversity", result.render())

    shares = result.request_share
    # The paper's premise: queries issue I/O of *different* types.
    assert shares[1]["sequential"] > 0.9, "Q1 must be sequential-dominated"
    assert shares[6]["sequential"] > 0.9, "Q6 must be sequential-dominated"
    assert shares[9]["random"] > 0.5, "Q9 must be random-dominated"
    assert (
        result.block_share[18]["temp"] > 0.2
    ), "Q18 must carry substantial temp data"
    # Every query classifies 100% of its traffic.
    for qid, per_type in shares.items():
        assert abs(sum(per_type.values()) - 1.0) < 1e-9, qid

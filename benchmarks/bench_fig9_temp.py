"""Figure 9: execution time of the temp-data query Q18."""

from conftest import compute_once, publish

from repro.harness.experiments import fig9_temp


def test_fig9_temp_query(benchmark, runner, shared_cache):
    result = benchmark.pedantic(
        lambda: compute_once(shared_cache, "fig9", lambda: fig9_temp(runner)),
        rounds=1,
        iterations=1,
    )
    publish("fig9_temp", result.render())

    per = result.seconds[18]
    # Paper's three observations for Q18:
    # (1) the SSD advantage is clear (1.45x there);
    assert per["hdd"] / per["ssd"] > 1.2
    # (2) LRU improves over HDD-only, but not dramatically;
    assert per["lru"] < per["hdd"]
    # (3) hStorage-DB beats LRU by keeping temp data for its whole lifetime.
    assert per["hstorage"] < per["lru"]

"""Ablation: TRIM vs the legacy-FS eviction-scan workaround vs doing nothing.

Section 4.2.3 of the paper argues temporary data must be *evicted
promptly* at the end of its lifetime, via TRIM on a supporting file
system, or via a sequential re-read at the "non-caching and eviction"
priority on a legacy one.  This ablation runs the temp-heavy Q18 followed
by a random-heavy Q9 on one database and shows that stale temp blocks
poison the cache when neither mechanism runs.
"""

from conftest import publish

from repro.harness.configs import build_database
from repro.harness.report import format_table
from repro.tpch.queries import query_builder
from repro.tpch.workload import load_tpch


def _run(runner, use_trim: bool, disable_eviction: bool) -> float:
    config = runner.config("hstorage", runner.settings.scale)
    # A tight cache (~40% of the database): dead temp blocks squatting at
    # priority 1 visibly starve the follow-up query's random working set.
    config = config.with_(
        use_trim=use_trim,
        cache_blocks=max(64, round(runner.database_pages(runner.settings.scale) * 0.4)),
    )
    db = build_database(config)
    load_tpch(db, data=runner.data(runner.settings.scale))
    if disable_eviction:
        # Sabotage lifetime management entirely: deletions neither TRIM nor
        # demote, so dead temp blocks squat in the cache at priority 1.
        db.temp.use_trim = False
        db.storage_manager.evict_scan_file = lambda file, sem: None
    db.run_query(query_builder(18), label="Q18", collect=False)
    result = db.run_query(query_builder(9), label="Q9", collect=False)
    return result.sim_seconds


def test_ablation_temp_lifetime(benchmark, runner):
    def experiment():
        return {
            "trim": _run(runner, use_trim=True, disable_eviction=False),
            "evict-scan": _run(runner, use_trim=False, disable_eviction=False),
            "none": _run(runner, use_trim=True, disable_eviction=True),
        }

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)
    publish(
        "ablation_trim",
        format_table(
            ["lifetime mechanism", "Q9-after-Q18 (s)"],
            [[k, v] for k, v in times.items()],
            "Ablation — temp lifetime management (Q9 following Q18)",
        ),
    )
    # Without eviction, dead temp data keeps cache space from Q9's
    # random blocks: it must not beat the TRIM configuration.
    assert times["trim"] <= times["none"] * 1.05
    # The legacy workaround achieves the same layout effect as TRIM.
    assert times["evict-scan"] <= times["none"] * 1.05

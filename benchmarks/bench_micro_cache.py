"""Microbenchmarks: raw operation throughput of the cache implementations.

These use pytest-benchmark conventionally (many rounds) since they
measure real CPU cost of the placement engines, not simulated time.
"""

import random

from repro.storage import LRUCache, PolicySet, PriorityCache, QoSPolicy

_PSET = PolicySet()
_POLICIES = [
    QoSPolicy.with_priority(1),
    QoSPolicy.with_priority(2),
    QoSPolicy.with_priority(5),
    _PSET.sequential_policy(),
    _PSET.update_policy(),
]


def _drive_priority_cache():
    cache = PriorityCache(1024, _PSET)
    rng = random.Random(7)
    for i in range(20_000):
        lbn = rng.randrange(4096)
        cache.access_block(
            lbn, write=(i % 7 == 0), policy=_POLICIES[i % len(_POLICIES)]
        )
    return cache.occupancy


def _drive_lru_cache():
    cache = LRUCache(1024)
    rng = random.Random(7)
    for i in range(20_000):
        cache.access_block(rng.randrange(4096), write=(i % 7 == 0), policy=None)
    return cache.occupancy


def test_priority_cache_throughput(benchmark):
    occupancy = benchmark(_drive_priority_cache)
    assert occupancy == 1024


def test_lru_cache_throughput(benchmark):
    occupancy = benchmark(_drive_lru_cache)
    assert occupancy == 1024

"""Table 9: the TPC-H throughput test (3 query streams + 1 update stream)."""

from conftest import compute_once, publish

from repro.harness.experiments import table9_throughput


def test_table9_throughput(benchmark, runner, shared_cache):
    result = benchmark.pedantic(
        lambda: compute_once(
            shared_cache, "throughput", lambda: table9_throughput(runner)
        ),
        rounds=1,
        iterations=1,
    )
    publish("table9_throughput", result.render())

    qph = {k: r.queries_per_hour for k, r in result.results.items()}
    # Paper ordering: HDD-only < LRU < hStorage-DB < SSD-only
    # (13 < 28 < 43 < 114).
    assert qph["hdd"] < qph["lru"] < qph["hstorage"] < qph["ssd"]

"""Real wall-clock benchmark: row vs vectorized vs push execution.

Unlike every other benchmark in this directory, the numbers here are
*host* seconds, not simulated seconds: the vectorized engine (ISSUE 2)
and the push-based morsel engine (ISSUE 6, DESIGN.md §12) change only
how fast the simulation itself runs.  Three measurements:

* a sequential-scan microbenchmark (the paper's Rule-1 traffic shape) —
  acceptance-gated at **>= 6x** for the vectorized engine (ratcheted
  from the original 3x) and **>= 10x** for the push engine;
* Q1/Q3/Q6 TPC-H plans at two scale factors, reported per executor;
* the **Q1+Q6** combined wall clock, push vs row — the fused-kernel
  gate (**>= 3x**), measured at the medium scale factor.

All engines run the identical simulated workload — the differential
tests (tests/test_vectorized_diff.py) prove the simulated clock, request
order and result rows match bit-for-bit; this benchmark only times them.

CLI axes (see conftest): ``--executor {row,vectorized,push}`` restricts
the comparison to one mode (exploratory; gates need all three and are
skipped), and ``--profile`` wraps each measured run in ``cProfile`` and
adds the top-20 cumulative hotspots to the JSON artifact (profiler
overhead pollutes the timings, so gates are skipped then too).

Results go to results/wallclock_exec.{txt,json}; full-fidelity runs also
write the repo-root ``BENCH_PR6.json`` trajectory artifact, which
``benchmarks/check_trajectory.py`` re-validates in CI.
``REPRO_BENCH_SCALE`` shrinks the dataset for CI smoke runs.
"""

from __future__ import annotations

import cProfile
import gc
import pstats
import time

from conftest import (
    BENCH_SCALE,
    envelope,
    publish,
    publish_envelope,
    write_trajectory,
)

from repro.db.executor import SeqScan
from repro.db.tuples import schema
from repro.harness.configs import build_database, hstorage_config
from repro.harness.report import format_table
from repro.tpch.datagen import generate
from repro.tpch.queries import query_builder
from repro.tpch.workload import load_tpch

EXECUTORS = ("row", "vectorized", "push")

SCAN_ROWS = max(20_000, int(80_000 * BENCH_SCALE))
TPCH_SCALES = {"small": 0.08 * BENCH_SCALE, "medium": 0.25 * BENCH_SCALE}
TPCH_QUERIES = (1, 3, 6)
GATE_SF = "medium"

MIN_SCAN_SPEEDUP_VEC = 6.0  # ratcheted from the original 3x (ISSUE 6)
MIN_SCAN_SPEEDUP_PUSH = 10.0
MIN_Q1Q6_SPEEDUP_PUSH = 3.0
REPEATS = 3


def _scan_db(executor: str):
    # The pool is sized to hold the whole table: after the first (cold)
    # repetition the best-of-REPEATS measurement is pure executor cost.
    # With a smaller pool every repetition re-runs the storage-simulation
    # fault path, which is bit-identical across executors and would cap
    # the measurable ratio at shared-cost parity instead of exposing the
    # per-row vs per-morsel difference this micro exists to track.
    db = build_database(
        hstorage_config(
            cache_blocks=4096,
            bufferpool_pages=max(512, SCAN_ROWS // 32),
            executor=executor,
        )
    )
    rel = db.create_table("t", schema(("k", "int"), ("pad", "str", 16)))
    rel.heap.bulk_load((i, "x" * 16) for i in range(SCAN_ROWS))
    db.reset_measurements()
    return db


def _tpch_db(executor: str, data):
    db = build_database(
        hstorage_config(
            cache_blocks=4096,
            bufferpool_pages=1024,
            work_mem_rows=5000,
            executor=executor,
        )
    )
    load_tpch(db, data=data)
    db.reset_measurements()
    return db


class _Profiler:
    """Optional cProfile wrapper collecting top-20 cumulative hotspots."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.hotspots: dict[str, list] = {}

    def run(self, label: str, fn):
        if not self.enabled:
            return fn()
        profile = cProfile.Profile()
        outcome = profile.runcall(fn)
        stats = pstats.Stats(profile)
        stats.sort_stats("cumulative")
        top = []
        for func in stats.fcn_list[:20]:  # (file, line, name), sorted
            cc, nc, tt, ct, _ = stats.stats[func]
            filename, line, name = func
            top.append(
                {
                    "function": f"{filename}:{line}({name})",
                    "ncalls": nc,
                    "tottime": round(tt, 6),
                    "cumtime": round(ct, 6),
                }
            )
        self.hotspots[label] = top
        return outcome


def _time_query(db, plan_or_builder, label, profiler):
    """Best-of-REPEATS host seconds for one query execution.

    The cyclic collector stays *enabled* — allocation-proportional GC
    cost is part of what each executor is charged for, and the recorded
    speedups have always been measured in that regime.  It is drained
    right before the timed region, though: by the time the TPC-H stage
    runs, the process carries a large long-lived heap from earlier
    stages, and a full generation-2 pass landing inside one timed run
    skews millisecond-scale ratios by several milliseconds.
    """
    best = float("inf")
    result = None

    def once():
        return db.run_query(plan_or_builder, label=label, collect=False)

    gc.collect()
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = profiler.run(label, once)
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench_scan(executors, profiler) -> dict:
    seconds = {}
    sim = {}
    for executor in executors:
        db = _scan_db(executor)
        plan_builder = lambda d: SeqScan(d.catalog.relation("t"))  # noqa: E731
        secs, result = _time_query(
            db, plan_builder, f"seqscan-{executor}", profiler
        )
        seconds[executor] = secs
        sim[executor] = result.sim_seconds
    return {
        "rows": SCAN_ROWS,
        "seconds": seconds,
        "sim_seconds": sim,
        "speedup": {
            executor: seconds["row"] / seconds[executor]
            for executor in executors
            if executor != "row" and "row" in seconds
        },
    }


def _bench_tpch(executors, profiler) -> list[dict]:
    entries = []
    for sf_name, sf in TPCH_SCALES.items():
        data = generate(scale=sf, seed=42)
        for executor in executors:
            db = _tpch_db(executor, data)
            for qid in TPCH_QUERIES:
                secs, _ = _time_query(
                    db,
                    query_builder(qid),
                    f"Q{qid}-{sf_name}-{executor}",
                    profiler,
                )
                entries.append(
                    {
                        "sf": sf_name,
                        "query": f"Q{qid}",
                        "executor": executor,
                        "seconds": secs,
                    }
                )
    return entries


def _q1q6(tpch: list[dict]) -> dict | None:
    """Combined Q1+Q6 wall clock at the gate scale, push vs row."""
    totals: dict[str, float] = {}
    for entry in tpch:
        if entry["sf"] == GATE_SF and entry["query"] in ("Q1", "Q6"):
            totals[entry["executor"]] = (
                totals.get(entry["executor"], 0.0) + entry["seconds"]
            )
    if "row" not in totals or "push" not in totals:
        return None
    return {
        "sf": GATE_SF,
        "row_seconds": totals["row"],
        "push_seconds": totals["push"],
        "speedup": totals["row"] / totals["push"],
    }


def test_wallclock_exec(benchmark, bench_options):
    only = bench_options["executor"]
    executors = (only,) if only else EXECUTORS
    profiler = _Profiler(bench_options["profile"])
    full_comparison = only is None

    def experiment():
        payload = {
            "scan": _bench_scan(executors, profiler),
            "tpch": _bench_tpch(executors, profiler),
        }
        if full_comparison:
            payload["q1q6"] = _q1q6(payload["tpch"])
        if profiler.enabled:
            payload["profile"] = profiler.hotspots
        return payload

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    scan = outcome["scan"]

    def fmt_speedup(executor):
        speedup = scan["speedup"].get(executor)
        return f"{speedup:.1f}x" if speedup is not None else "-"

    table = [
        ["seqscan-micro", f"{scan['rows']} rows", "scan", executor,
         f"{scan['seconds'][executor] * 1e3:.1f}", fmt_speedup(executor)]
        for executor in executors
    ] + [
        [entry["query"], entry["sf"], entry["query"], entry["executor"],
         f"{entry['seconds'] * 1e3:.1f}", "-"]
        for entry in outcome["tpch"]
    ]
    publish(
        "wallclock_exec",
        format_table(
            ["workload", "scale", "query", "executor", "ms", "vs row"],
            table,
            "Executor wall clock — row vs vectorized vs push",
        ),
    )

    # The speedup floors are acceptance gates for full-fidelity,
    # unprofiled, all-executor runs only: shrunken smoke runs (CI sets
    # REPRO_BENCH_SCALE < 1) are too noisy to gate on host timing, and
    # cProfile overhead distorts the ratios.  Gate values are recorded
    # in the envelope under the same condition — the trajectory check
    # re-enforces every recorded floor, so noise-dominated numbers must
    # never be written down.  Elsewhere, completing and emitting
    # well-formed JSON suffices.
    gated = BENCH_SCALE >= 1.0 and full_comparison and not profiler.enabled
    gates = {}
    if gated:
        gates["scan_speedup_vectorized"] = (
            scan["speedup"]["vectorized"], MIN_SCAN_SPEEDUP_VEC
        )
        gates["scan_speedup_push"] = (
            scan["speedup"]["push"], MIN_SCAN_SPEEDUP_PUSH
        )
        if outcome["q1q6"] is not None:
            gates["q1q6_speedup_push"] = (
                outcome["q1q6"]["speedup"], MIN_Q1Q6_SPEEDUP_PUSH
            )
    env = envelope("wallclock_exec", pr=6, payload=outcome, gates=gates)
    publish_envelope(env)

    # All executors simulate the identical world.
    assert len(set(scan["sim_seconds"].values())) == 1

    if gated:
        write_trajectory(env)
        for name, (value, floor) in gates.items():
            assert value >= floor, (
                f"{name} = {value:.2f}x below the {floor}x acceptance floor"
            )

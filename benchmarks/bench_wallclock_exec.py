"""Real wall-clock benchmark: vectorized vs row-at-a-time execution.

Unlike every other benchmark in this directory, the numbers here are
*host* seconds, not simulated seconds: the vectorized engine (ISSUE 2)
changes only how fast the simulation itself runs.  Three measurements:

* a sequential-scan microbenchmark (the paper's Rule-1 traffic shape),
  which must show **>= 3x** speedup — this is the acceptance gate;
* Q1/Q3/Q6-style TPC-H plans at two scale factors ("small"/"medium"),
  reported for the record (no gate: join/index-heavy plans keep
  row-granular random-access segments by design, see DESIGN.md §7).

Both engines run the identical simulated workload — the differential
test (tests/test_vectorized_diff.py) proves the simulated clock, request
counts and result rows match bit-for-bit; this benchmark only times them.

Results go to results/wallclock_exec.{txt,json}.  ``REPRO_BENCH_SCALE``
shrinks the dataset for CI smoke runs.
"""

from __future__ import annotations

import os
import time

from conftest import publish, publish_json

from repro.db.executor import SeqScan
from repro.db.tuples import schema
from repro.harness.configs import build_database, hstorage_config
from repro.harness.report import format_table
from repro.tpch.datagen import generate
from repro.tpch.queries import query_builder
from repro.tpch.workload import load_tpch

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

SCAN_ROWS = max(20_000, int(80_000 * BENCH_SCALE))
TPCH_SCALES = {"small": 0.08 * BENCH_SCALE, "medium": 0.25 * BENCH_SCALE}
TPCH_QUERIES = (1, 3, 6)
MIN_SCAN_SPEEDUP = 3.0
REPEATS = 3


def _scan_db(vectorized: bool):
    db = build_database(
        hstorage_config(
            cache_blocks=4096, bufferpool_pages=256, vectorized=vectorized
        )
    )
    rel = db.create_table("t", schema(("k", "int"), ("pad", "str", 16)))
    rel.heap.bulk_load((i, "x" * 16) for i in range(SCAN_ROWS))
    db.reset_measurements()
    return db


def _time_query(db, plan_or_builder, label: str) -> tuple[float, object]:
    """Best-of-REPEATS host seconds for one query execution."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = db.run_query(plan_or_builder, label=label, collect=False)
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench_scan() -> dict:
    timings = {}
    sim = {}
    for vectorized in (False, True):
        db = _scan_db(vectorized)
        plan_builder = lambda d: SeqScan(d.catalog.relation("t"))  # noqa: E731
        seconds, result = _time_query(db, plan_builder, "seqscan")
        timings[vectorized] = seconds
        sim[vectorized] = result.sim_seconds
    return {
        "rows": SCAN_ROWS,
        "row_seconds": timings[False],
        "vec_seconds": timings[True],
        "speedup": timings[False] / timings[True],
        "sim_seconds_row": sim[False],
        "sim_seconds_vec": sim[True],
    }


def _bench_tpch() -> list[dict]:
    entries = []
    for sf_name, sf in TPCH_SCALES.items():
        data = generate(scale=sf, seed=42)
        for vectorized in (False, True):
            db = build_database(
                hstorage_config(
                    cache_blocks=4096,
                    bufferpool_pages=256,
                    work_mem_rows=5000,
                    vectorized=vectorized,
                )
            )
            load_tpch(db, data=data)
            db.reset_measurements()
            for qid in TPCH_QUERIES:
                seconds, _ = _time_query(db, query_builder(qid), f"Q{qid}")
                entries.append(
                    {
                        "sf": sf_name,
                        "query": f"Q{qid}",
                        "vectorized": vectorized,
                        "seconds": seconds,
                    }
                )
    return entries


def test_wallclock_exec(benchmark):
    def experiment():
        return {"scan": _bench_scan(), "tpch": _bench_tpch()}

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    scan = outcome["scan"]

    tpch_rows = {}
    for entry in outcome["tpch"]:
        key = (entry["sf"], entry["query"])
        tpch_rows.setdefault(key, {})[entry["vectorized"]] = entry["seconds"]

    table = [
        [
            "seqscan-micro",
            f"{scan['rows']} rows",
            f"{scan['row_seconds'] * 1e3:.1f}",
            f"{scan['vec_seconds'] * 1e3:.1f}",
            f"{scan['speedup']:.1f}x",
        ]
    ] + [
        [
            query,
            sf,
            f"{modes[False] * 1e3:.1f}",
            f"{modes[True] * 1e3:.1f}",
            f"{modes[False] / modes[True]:.1f}x",
        ]
        for (sf, query), modes in sorted(tpch_rows.items())
    ]
    publish(
        "wallclock_exec",
        format_table(
            ["workload", "scale", "row ms", "vectorized ms", "speedup"],
            table,
            "Executor wall clock — row-at-a-time vs vectorized",
        ),
    )
    publish_json("wallclock_exec", outcome)

    assert scan["sim_seconds_row"] == scan["sim_seconds_vec"]
    # The speedup floor is an acceptance gate for full-fidelity runs only:
    # shrunken smoke runs (CI sets REPRO_BENCH_SCALE < 1) are too noisy to
    # gate on host timing — there, completing and emitting JSON suffices.
    if BENCH_SCALE >= 1.0:
        assert scan["speedup"] >= MIN_SCAN_SPEEDUP, (
            f"sequential-scan speedup {scan['speedup']:.2f}x "
            f"below the {MIN_SCAN_SPEEDUP}x acceptance floor"
        )

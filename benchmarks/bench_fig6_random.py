"""Figure 6: execution times of random-request queries (Q9/Q21)."""

from conftest import compute_once, publish

from repro.harness.experiments import fig6_random


def test_fig6_random_queries(benchmark, runner, shared_cache):
    result = benchmark.pedantic(
        lambda: compute_once(shared_cache, "fig6", lambda: fig6_random(runner)),
        rounds=1,
        iterations=1,
    )
    publish("fig6_random", result.render())

    for qid, per in result.seconds.items():
        # (1) The SSD advantage is obvious (paper: 7.2x / 3.9x).
        assert per["hdd"] / per["ssd"] > 3.0, qid
        # (2) Both caches dramatically beat HDD-only.
        assert per["lru"] < per["hdd"] * 0.75, qid
        assert per["hstorage"] < per["hdd"] * 0.75, qid
    # (3) For Q9, hStorage-DB matches LRU (within 10%).
    q9 = result.seconds[9]
    assert q9["hstorage"] < q9["lru"] * 1.10
    # (4) For Q21, hStorage-DB slightly underperforms LRU (Section 6.3.2):
    # LRU benefits from caching the sequentially-scanned lineitem blocks.
    q21 = result.seconds[21]
    assert q21["hstorage"] > q21["lru"]

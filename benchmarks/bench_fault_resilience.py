"""Fault-resilience benchmark: chaos gates, throughput vs fault rate,
and failover recovery cost (ISSUE 7).

Three measurements of the robustness machinery:

* **chaos gates** — one sweep per chaos profile over the TPC-H queries;
  the PR's acceptance criteria recorded as hard 1.0-floor gates:
  transient faults leave results bit-identical, corruption never
  produces a silent wrong result, tier failout recovers, and the same
  seed reproduces the identical fault trace;
* **throughput vs fault rate** — the same query sequence under rising
  transient-error rates; retry backoff and latency spikes are charged to
  the simulated clock, so retention (fault-free seconds / faulted
  seconds) measures the deterministic cost of the retry policy;
* **failover recovery cost** — the background seconds and block count of
  evacuating the failed tier, from the ``failout`` sweep.

Results go to results/fault_resilience.{txt,json} in the shared
repro-bench/v1 envelope; full-fidelity runs also refresh the repo-root
``BENCH_PR7.json`` trajectory artifact.  ``REPRO_BENCH_SCALE`` shrinks
the sweep for CI smoke runs.
"""

from __future__ import annotations

from conftest import (
    BENCH_SCALE,
    envelope,
    publish,
    publish_envelope,
    write_trajectory,
)

from repro.harness.chaos import run_chaos
from repro.harness.configs import StorageConfig, build_database
from repro.harness.report import format_table
from repro.storage.faults import FaultPlan, FaultProfile
from repro.tpch.datagen import generate
from repro.tpch.queries import query_builder, query_label
from repro.tpch.workload import load_tpch

CHAOS_SCALE = max(0.02, round(0.1 * BENCH_SCALE, 3))
CHAOS_QUERIES = None if BENCH_SCALE >= 1.0 else (1, 3, 6, 14)
CURVE_QUERIES = (6, 1, 14, 3)
FAULT_RATES = (0.0, 0.005, 0.01, 0.02, 0.05)
SEED = 7


def _throughput_curve(data) -> list[dict]:
    """Simulated foreground seconds for one query sequence per fault rate.

    The plan stays disarmed while the database loads (a real operator
    would not format disks through a failing controller); only the
    measured window runs under injection.
    """
    entries = []
    baseline = None
    for rate in FAULT_RATES:
        plan = None
        if rate:
            plan = FaultPlan(
                seed=SEED,
                profiles={
                    "*": FaultProfile(
                        read_error_rate=rate,
                        write_error_rate=rate,
                        spike_rate=rate / 2,
                        spike_factor=6.0,
                    )
                },
                enabled=False,
            )
        config = StorageConfig(
            kind="hstorage", bufferpool_pages=16, fault_plan=plan
        )
        db = build_database(config)
        load_tpch(db, data=data)
        if plan is not None:
            plan.enable()
        start = db.clock.now
        for qid in CURVE_QUERIES:
            db.run_query(query_builder(qid), label=query_label(qid))
        sim_seconds = db.clock.now - start
        if baseline is None:
            baseline = sim_seconds
        recovery = db.storage.backend.recovery
        entries.append(
            {
                "fault_rate": rate,
                "sim_seconds": sim_seconds,
                "throughput_retention": baseline / sim_seconds,
                "retries": recovery.retries,
                "retry_backoff_seconds": recovery.retry_backoff_seconds,
                "fault_events": len(plan.trace) if plan is not None else 0,
            }
        )
    return entries


def _chaos_sweeps(data) -> dict:
    reports = {
        profile: run_chaos(
            profile=profile,
            seed=SEED,
            scale=CHAOS_SCALE,
            queries=CHAOS_QUERIES,
            data=data,
        )
        for profile in ("transient", "corrupt", "failout")
    }
    # Determinism witness: the transient sweep, repeated with the same
    # seed, must reproduce the identical fault trace.
    repeat = run_chaos(
        profile="transient",
        seed=SEED,
        scale=CHAOS_SCALE,
        queries=CHAOS_QUERIES,
        data=data,
    )
    return {
        "reports": {p: r.as_dict() for p, r in reports.items()},
        "deterministic": repeat.trace_fingerprint
        == reports["transient"].trace_fingerprint,
    }


def test_fault_resilience(benchmark):
    data = generate(CHAOS_SCALE, seed=42)

    def experiment():
        return {
            "chaos": _chaos_sweeps(data),
            "throughput_curve": _throughput_curve(data),
        }

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    reports = outcome["chaos"]["reports"]
    curve = outcome["throughput_curve"]
    transient = reports["transient"]
    corrupt = reports["corrupt"]
    failout = reports["failout"]

    publish(
        "fault_resilience",
        format_table(
            ["fault rate", "sim (s)", "retention", "retries", "events"],
            [
                [
                    f"{e['fault_rate']:.3f}",
                    f"{e['sim_seconds']:.4f}",
                    f"{e['throughput_retention']:.3f}",
                    e["retries"],
                    e["fault_events"],
                ]
                for e in curve
            ],
            "Throughput retention vs transient fault rate "
            f"(chaos verdicts: transient={transient['verdict']} "
            f"corrupt={corrupt['verdict']} failout={failout['verdict']})",
        ),
    )

    total_queries = len(transient["queries"])
    retention_1pct = next(
        e["throughput_retention"] for e in curve if e["fault_rate"] == 0.01
    )
    # All five gates are computed from simulated quantities, so they are
    # deterministic: the first four are the PR's acceptance criteria as
    # hard pass/fail floors, the retention floor trips only if the retry
    # policy's charged backoff blows up structurally.
    gates = {
        "transient_identical": (
            transient["matched"] / total_queries, 1.0
        ),
        "corrupt_no_silent": (
            1.0 if corrupt["silent_mismatches"] == 0 else 0.0, 1.0
        ),
        "failout_recovered": (
            1.0
            if failout["verdict"]
            and failout["recovery"]["tier_failovers"] >= 1
            else 0.0,
            1.0,
        ),
        "deterministic_trace": (
            1.0 if outcome["chaos"]["deterministic"] else 0.0, 1.0
        ),
        "throughput_retention_1pct": (retention_1pct, 0.75),
    }
    env = envelope("fault_resilience", pr=7, payload=outcome, gates=gates)
    publish_envelope(env)
    write_trajectory(env)

    assert transient["verdict"], transient
    assert corrupt["verdict"], corrupt
    assert failout["verdict"], failout
    assert outcome["chaos"]["deterministic"]
    assert retention_1pct >= 0.75
    # Retention degrades monotonically-ish with the rate; the fault-free
    # leg is the ceiling by construction.
    assert all(e["throughput_retention"] <= 1.0 + 1e-9 for e in curve)
    # Failover work was real and bounded: blocks were remapped and the
    # evacuation's background cost was charged.
    assert failout["recovery"]["blocks_remapped"] >= 1
    assert failout["recovery"]["failover_seconds"] >= 0.0

"""Ablation: the write-buffer fraction ``b`` (paper Section 4.2.4).

The paper sets b = 10% for OLAP.  This ablation runs RF1 + a query mix
under different fractions and reports the update-stream time and the
number of write-buffer flushes.
"""

from conftest import publish

from repro.harness.configs import build_database
from repro.harness.report import format_table
from repro.storage.qos import PolicySet
from repro.tpch.queries import query_builder
from repro.tpch.refresh import rf1_builder
from repro.tpch.workload import load_tpch


def _run(runner, fraction: float) -> tuple[float, int]:
    config = runner.config("hstorage", runner.settings.scale)
    config = config.with_(
        policy_set=PolicySet(write_buffer_fraction=fraction)
    )
    db = build_database(config)
    meta = load_tpch(db, data=runner.data(runner.settings.scale))
    rf = db.run_query(rf1_builder(meta), label="RF1", collect=False)
    db.run_query(query_builder(9), label="Q9", collect=False)
    cache = db.storage.backend.cache
    return rf.sim_seconds, cache.write_buffer_flushes


def test_ablation_write_buffer_fraction(benchmark, runner):
    fractions = (0.0, 0.10, 0.30)

    def experiment():
        return {f: _run(runner, f) for f in fractions}

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    publish(
        "ablation_write_buffer",
        format_table(
            ["b", "RF1 (s)", "flushes"],
            [[f, v[0], v[1]] for f, v in outcome.items()],
            "Ablation — write-buffer fraction",
        ),
    )
    # A tiny buffer flushes more often than the paper's 10% setting.
    assert outcome[0.0][1] >= outcome[0.10][1]

"""Placement-mode benchmark: semantic vs temperature vs hybrid (ISSUE 5).

Runs the shifting-hot-set scenario (``repro.harness.shift``) under all
three placement modes on both the static and the shifting workload and
reports simulated foreground time with migration I/O broken out
separately.  The two results the subsystem exists to reproduce:

* **static**: semantic placement is at least as fast as the pure
  temperature rival — migration "learns" placement only after paying
  for mispredictions (paper §1–2, §7), while QoS-driven placement is
  right from the first access;
* **shifting**: hybrid (semantic admission + heat migration) strictly
  beats pure semantic — extent-granular migration prefetches the newly
  hot region, which per-block admission cannot anticipate.

Results go to results/placement_shift.{txt,json} in the shared
repro-bench/v1 envelope; full-fidelity runs also refresh the repo-root
``BENCH_PR5.json`` trajectory artifact.  ``REPRO_BENCH_SCALE`` shrinks
the operation count for CI smoke runs; the assertions hold at every
scale because the simulation is deterministic.
"""

from __future__ import annotations

from conftest import (
    BENCH_SCALE,
    envelope,
    publish,
    publish_envelope,
    write_trajectory,
)

from repro.harness.report import format_table
from repro.harness.shift import run_placement_shift
from repro.tpch.datagen import generate

DATA_SCALE = 0.3
"""TPC-H scale is fixed so the hot-set geometry (regions vs extents vs
buffer pool) is identical at every benchmark scale; only the operation
count shrinks for smoke runs."""

N_OPS = max(240, int(600 * BENCH_SCALE))
MODES = ("semantic", "temperature", "hybrid")


def _run_all() -> dict:
    data = generate(scale=DATA_SCALE, seed=42)
    runs = {}
    for shifting in (False, True):
        for mode in MODES:
            result = run_placement_shift(
                mode=mode,
                shifting=shifting,
                data=data,
                n_ops=N_OPS,
                bufferpool_pages=16,
            )
            runs[(mode, shifting)] = result.to_json()
    return {
        "data_scale": DATA_SCALE,
        "n_ops": N_OPS,
        "static": {mode: runs[(mode, False)] for mode in MODES},
        "shifting": {mode: runs[(mode, True)] for mode in MODES},
    }


def test_placement_shift(benchmark):
    outcome = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    static = outcome["static"]
    shifting = outcome["shifting"]

    rows = []
    for workload, by_mode in (("static", static), ("shifting", shifting)):
        for mode in MODES:
            entry = by_mode[mode]
            mig = entry["migration"]
            rows.append(
                [
                    workload,
                    mode,
                    f"{entry['sim_seconds']:.4f}",
                    f"{entry['background_seconds']:.4f}",
                    mig.get("blocks_promoted", 0),
                    mig.get("blocks_demoted", 0),
                    mig.get("recorded_blocks", 0),
                ]
            )
    publish(
        "placement_shift",
        format_table(
            [
                "workload", "mode", "sim (s)", "background (s)",
                "promoted", "demoted", "migrate blocks",
            ],
            rows,
            f"Placement modes on static vs shifting hot sets "
            f"({N_OPS} ops, TPC-H scale {DATA_SCALE})",
        ),
    )
    # The hybrid-beats-semantic margin under drift is this bench's
    # recorded trajectory gate: the speedup must stay >= 1 (hybrid
    # strictly faster), checked again by check_trajectory.py.
    drift_speedup = (
        shifting["semantic"]["sim_seconds"]
        / shifting["hybrid"]["sim_seconds"]
    )
    env = envelope(
        "placement_shift",
        pr=5,
        payload=outcome,
        gates={"drift_speedup_hybrid": (drift_speedup, 1.0)},
    )
    publish_envelope(env)
    write_trajectory(env)

    # (a) The paper's result: on a static workload, semantic placement
    # is at least as fast as pure temperature-driven migration.
    assert (
        static["semantic"]["sim_seconds"]
        <= static["temperature"]["sim_seconds"]
    ), "semantic must not lose to the temperature rival on static data"

    # (b) The drift result: hybrid strictly beats pure semantic once the
    # hot set rotates — migration recovers what static rules cannot.
    assert (
        shifting["hybrid"]["sim_seconds"]
        < shifting["semantic"]["sim_seconds"]
    ), "hybrid must strictly beat semantic under workload drift"

    # Migration I/O is reported separately, never inside query totals.
    for workload in (static, shifting):
        for mode in MODES:
            entry = workload[mode]
            mig = entry["migration"]
            if mode == "semantic":
                assert mig.get("recorded_blocks", 0) == 0
            assert entry["foreground_blocks"] > 0
    assert shifting["hybrid"]["migration"]["blocks_promoted"] > 0

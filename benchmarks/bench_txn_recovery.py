"""Transaction benchmark: commit throughput and recovery time vs log length.

Two measurements of the new subsystem (ISSUE 3):

* **commit throughput** — batches of point-insert transactions against a
  WAL-enabled database; reported in simulated commits/second (the log
  force is synchronous, so this prices the write-buffer log path) and
  host seconds for the record;
* **recovery time vs log length** — workloads of increasing transaction
  counts are crashed at their final WAL position and recovered; recovery
  cost (simulated seconds, host seconds, redo counts) is reported per
  log length, which should scale roughly linearly.

Results go to results/txn_recovery.{txt,json} in the shared
repro-bench/v1 envelope; full-fidelity runs also refresh the repo-root
``BENCH_PR3.json`` trajectory artifact.  ``REPRO_BENCH_SCALE`` shrinks
the workloads for CI smoke runs.
"""

from __future__ import annotations

import time

from conftest import (
    BENCH_SCALE,
    envelope,
    publish,
    publish_envelope,
    write_trajectory,
)

from repro.core.semantics import ContentType, SemanticInfo
from repro.db.tuples import schema
from repro.db.txn import recover, simulate_crash
from repro.harness.configs import build_database, hstorage_config
from repro.harness.report import format_table

COMMIT_TXNS = max(50, int(400 * BENCH_SCALE))
ROWS_PER_TXN = 4
RECOVERY_TXN_COUNTS = tuple(
    max(10, int(n * BENCH_SCALE)) for n in (50, 100, 200, 400)
)


def _fresh_db(pool_pages: int = 64):
    db = build_database(
        hstorage_config(cache_blocks=2048, bufferpool_pages=pool_pages)
    )
    rel = db.create_table("t", schema(("k", "int"), ("pad", "str", 16)))
    rel.heap.bulk_load((i, "x" * 16) for i in range(2000))
    db.create_index("t_k", "t", "k")
    db.enable_wal()
    db.reset_measurements()
    return db, rel


def _run_txns(db, rel, n_txns: int, start_key: int = 10_000) -> None:
    ix = rel.indexes[0]
    sem = SemanticInfo.update(ContentType.TABLE, rel.oid)
    isem = SemanticInfo.update(ContentType.INDEX, ix.oid)
    key = start_key
    for _ in range(n_txns):
        with db.begin() as txn:
            for _ in range(ROWS_PER_TXN):
                rid = rel.heap.insert(db.pool, (key, "y" * 16), sem, txn=txn)
                ix.btree.insert(db.pool, key, rid, isem, txn=txn)
                key += 1


def _bench_commits() -> dict:
    db, rel = _fresh_db()
    sim_start = db.clock.now
    host_start = time.perf_counter()
    _run_txns(db, rel, COMMIT_TXNS)
    host_seconds = time.perf_counter() - host_start
    sim_seconds = db.clock.now - sim_start
    mgr = db.txn_manager
    return {
        "transactions": COMMIT_TXNS,
        "rows_per_txn": ROWS_PER_TXN,
        "sim_seconds": sim_seconds,
        "host_seconds": host_seconds,
        "sim_commits_per_second": COMMIT_TXNS / sim_seconds,
        "log_records": mgr.wal.last_lsn,
        "log_forces": mgr.wal.flushes,
    }


def _bench_recovery() -> list[dict]:
    entries = []
    for n_txns in RECOVERY_TXN_COUNTS:
        db, rel = _fresh_db(pool_pages=16)  # small pool: steal traffic too
        _run_txns(db, rel, n_txns)
        mgr = db.txn_manager
        history = mgr.capture_history()
        simulate_crash(db, history=history)
        host_start = time.perf_counter()
        report = recover(db)
        host_seconds = time.perf_counter() - host_start
        entries.append(
            {
                "transactions": n_txns,
                "log_records": history.last_lsn,
                "recovery_sim_seconds": report.sim_seconds,
                "recovery_host_seconds": host_seconds,
                "redo_applied": report.redo_applied,
                "redo_skipped": report.redo_skipped,
                "undo_applied": report.undo_applied,
            }
        )
    return entries


def test_txn_recovery(benchmark):
    def experiment():
        return {"commits": _bench_commits(), "recovery": _bench_recovery()}

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    commits = outcome["commits"]
    recovery = outcome["recovery"]

    publish(
        "txn_recovery",
        format_table(
            ["txns", "log records", "recovery sim (s)", "redo", "undone"],
            [
                [
                    e["transactions"],
                    e["log_records"],
                    f"{e['recovery_sim_seconds']:.4f}",
                    e["redo_applied"],
                    e["undo_applied"],
                ]
                for e in recovery
            ],
            "Recovery time vs log length "
            f"(commit throughput: {commits['sim_commits_per_second']:.0f} "
            "commits/sim-second)",
        ),
    )
    # Simulated commit throughput is the recorded trajectory gate; the
    # floor sits far below the measured ~11k commits/sim-second so it
    # trips on structural regressions (lost log batching), not noise —
    # the value is simulated, hence deterministic at full fidelity.
    # Shrunken smoke runs amortize fixed costs over fewer transactions
    # and must not write the resulting lower rate down as a gate.
    gates = {}
    if BENCH_SCALE >= 1.0:
        gates["sim_commits_per_second"] = (
            commits["sim_commits_per_second"], 5000.0
        )
    env = envelope("txn_recovery", pr=3, payload=outcome, gates=gates)
    publish_envelope(env)
    write_trajectory(env)

    # Sanity gates: every commit forced the log and all loser-free
    # recoveries redo work proportional to the log.  The strict
    # monotonicity of recovery time vs log length only holds once the
    # workload dwarfs recovery's fixed costs — shrunken smoke runs
    # (REPRO_BENCH_SCALE < 1) check the weaker end-to-end ordering.
    assert commits["log_forces"] >= commits["transactions"]
    assert all(e["undo_applied"] == 0 for e in recovery)
    sims = [e["recovery_sim_seconds"] for e in recovery]
    assert sims[-1] >= sims[0], "recovery time must grow with log length"
    if BENCH_SCALE >= 1.0:
        assert sims == sorted(sims), (
            "recovery time must grow monotonically with log length"
        )

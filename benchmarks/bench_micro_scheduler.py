"""Microbenchmark: batched vs per-page dispatch on a sequential scan.

The seed issued one scheduler round-trip per page fault; the batched
pipeline folds a read-ahead window's missing runs into one vectored
dispatch (DESIGN.md §4).  This benchmark scans the same heap both ways
on identical storage stacks and reports the dispatch counts — device
seconds are unchanged (the timing rules are per-block), only the
dispatch overhead class shrinks.
"""

from conftest import envelope, publish, publish_envelope

from repro.core.semantics import SemanticInfo
from repro.db.tuples import schema
from repro.harness.configs import build_database, hstorage_config
from repro.harness.report import format_table

ROWS = 40_000


def _fresh_db():
    db = build_database(
        hstorage_config(cache_blocks=2048, bufferpool_pages=128)
    )
    rel = db.create_table("t", schema(("k", "int"), ("pad", "str", 16)))
    rel.heap.bulk_load((i, "x" * 16) for i in range(ROWS))
    db.reset_measurements()
    return db, rel


def _scan_batched(db, rel):
    sem = SemanticInfo.table_scan(rel.oid, query_id=1)
    count = sum(1 for _ in rel.heap.scan(db.pool, sem))
    return count, db.storage.scheduler


def _scan_per_page(db, rel):
    """The seed's path: one get_page (one dispatch) per page."""
    sem = SemanticInfo.table_scan(rel.oid, query_id=1)
    count = 0
    for pageno in range(rel.heap.num_pages):
        page = db.pool.get_page(rel.heap.file, pageno, sem)
        count += sum(1 for _ in page.live_rows())
    return count, db.storage.scheduler


def test_scheduler_batching(benchmark):
    def experiment():
        db_a, rel_a = _fresh_db()
        rows_a, sched_a = _scan_batched(db_a, rel_a)
        db_b, rel_b = _fresh_db()
        rows_b, sched_b = _scan_per_page(db_b, rel_b)
        assert rows_a == rows_b == ROWS
        return {
            "batched": (sched_a, db_a.clock.now),
            "per-page": (sched_b, db_b.clock.now),
        }

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [
            path,
            sched.requests_accepted,
            sched.dispatches,
            sched.blocks_dispatched,
            round(seconds, 4),
        ]
        for path, (sched, seconds) in outcome.items()
    ]
    publish(
        "micro_scheduler",
        format_table(
            ["path", "requests", "dispatches", "blocks", "seconds"],
            rows,
            "Sequential scan — batched vs per-page dispatch",
        ),
    )

    # One envelope schema across every benchmark artifact (repro-bench/v1):
    # variants sit under payload["modes"] keyed by their mode name — the
    # same discriminator bench_placement_shift uses — so the trajectory
    # check can parse every artifact uniformly.
    publish_envelope(
        envelope(
            "micro_scheduler",
            pr=2,
            payload={
                "modes": {
                    path.replace("-", "_"): {
                        "mode": path.replace("-", "_"),
                        "requests": sched.requests_accepted,
                        "dispatches": sched.dispatches,
                        "blocks": sched.blocks_dispatched,
                        "sim_seconds": seconds,
                    }
                    for path, (sched, seconds) in outcome.items()
                }
            },
        )
    )

    batched, per_page = outcome["batched"][0], outcome["per-page"][0]
    # Same work reaches the devices either way...
    assert batched.blocks_dispatched == per_page.blocks_dispatched
    # ...but the batched pipeline needs far fewer scheduler dispatches
    # (one per read-ahead window instead of one per page).
    assert batched.dispatches * 8 <= per_page.dispatches

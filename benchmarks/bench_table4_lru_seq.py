"""Table 4: cache statistics for sequential requests under LRU."""

from conftest import compute_once, publish

from repro.harness.experiments import fig5_sequential, table4_lru_sequential


def test_table4_lru_sequential_stats(benchmark, runner, shared_cache):
    fig5 = compute_once(shared_cache, "fig5", lambda: fig5_sequential(runner))
    result = benchmark.pedantic(
        lambda: table4_lru_sequential(runner, fig5), rounds=1, iterations=1
    )
    publish("table4_lru_sequential", result.render())

    # The paper's point: caching sequential data brings a negligible hit
    # ratio (at most 0.3% in the paper).
    for qid, counts in result.rows.items():
        assert counts.blocks > 0, qid
        assert counts.hit_ratio < 0.05, (qid, counts)

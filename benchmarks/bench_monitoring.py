"""Monitoring benchmark: telemetry determinism, transparency, and the
overload feedback loop (ISSUE 10).

Three measurements of the monitoring stack (DESIGN.md §16):

* **determinism** — the same monitored :class:`~repro.serve.ServeConfig`
  on two freshly built databases must produce byte-identical dashboard
  JSON exports — every ring-buffer series, SLO good/bad stream, and
  alert transition (gate ``monitor_deterministic``, floor 1.0);
* **transparency** — the monitored run's serving report must be
  byte-identical to the same config run with monitoring off: sampling
  only *reads* the clock and the registry (gate ``monitor_transparent``,
  floor 1.0);
* **overload feedback** (full fidelity only) — in the ~1000-session
  overload experiment the interactive burn-rate alert must fire strictly
  before the per-epoch REJECT rate peaks (gate ``alert_led_rejects``,
  floor 1.0), and installing the :class:`~repro.serve.OverloadGovernor`
  at equal offered load must improve interactive p99 (gate
  ``governor_p99_gain`` records the off/on p99 ratio, floor 1.2).

Smoke runs (``REPRO_BENCH_SCALE < 1``) shrink the overload session
count; at that size the system never actually overloads (no alert, no
rejects), so the feedback gates are recorded and asserted only at full
fidelity — exactly the runs that refresh the repo-root
``BENCH_PR10.json`` artifact, whose ``monitoring`` payload block
``benchmarks/check_trajectory.py`` schema-validates.
"""

from __future__ import annotations

import dataclasses

from conftest import (
    BENCH_SCALE,
    envelope,
    publish,
    publish_envelope,
    write_trajectory,
)

from repro.harness.report import format_table
from repro.obs.alerts import default_monitor_spec
from repro.obs.export import dashboard_json
from repro.serve import ServeConfig, build_frontend
from repro.serve.overload import (
    DEFAULT_OPS_PER_SESSION,
    DEFAULT_OVERLOAD_SESSIONS,
    run_overload_experiment,
)
from repro.serve.tenants import default_tenants

MONITOR_SCALE = 0.02
SEED = 11
SESSIONS = 3
OPS_PER_SESSION = 4

FULL_FIDELITY = BENCH_SCALE >= 1.0
OVERLOAD_SESSIONS = (
    DEFAULT_OVERLOAD_SESSIONS
    if FULL_FIDELITY
    else max(50, int(DEFAULT_OVERLOAD_SESSIONS * BENCH_SCALE))
)
P99_GAIN_FLOOR = 1.2


def _monitored_config() -> ServeConfig:
    return ServeConfig(
        seed=SEED,
        tenants=default_tenants(SESSIONS, OPS_PER_SESSION),
        monitor=default_monitor_spec(),
    )


def _run_monitored() -> tuple[str, str, object]:
    """One monitored serving run on a fresh db.

    Returns (dashboard bytes, report bytes, monitor) — the first is the
    replay fixture, the second the transparency fixture.
    """
    frontend = build_frontend(_monitored_config(), scale=MONITOR_SCALE)
    report = frontend.run()
    assert frontend.monitor is not None
    return (
        dashboard_json(frontend.monitor, governor=frontend.governor),
        report.to_json(),
        frontend.monitor,
    )


def _slim_arm(arm: dict) -> dict:
    """An overload arm without its nested governor action log."""
    out = dict(arm)
    gov = out.pop("governor", None)
    if gov is not None:
        out["governor_sheds"] = gov.get("sheds", 0)
        out["governor_relaxes"] = gov.get("relaxes", 0)
    return out


def test_monitoring(benchmark):
    def experiment():
        dash_a, report_a, monitor = _run_monitored()
        dash_b, _report_b, _ = _run_monitored()
        plain_config = dataclasses.replace(_monitored_config(), monitor=None)
        plain = build_frontend(plain_config, scale=MONITOR_SCALE).run()
        overload = run_overload_experiment(
            seed=42,
            sessions=OVERLOAD_SESSIONS,
            ops_per_session=DEFAULT_OPS_PER_SESSION,
        )
        return dash_a, dash_b, report_a, plain.to_json(), monitor, overload

    dash_a, dash_b, report_a, plain_json, monitor, overload = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    deterministic = dash_a == dash_b
    transparent = report_a == plain_json
    alert_led = bool(overload["alert_led_rejects"])
    p99_gain = overload["p99_gain"]
    off = overload["governor_off"]
    on = overload["governor_on"]

    rows = [
        [
            arm,
            str(data["first_alert_epoch"]),
            str(data["reject_peak_epoch"]),
            data["interactive_rejects"],
            f"{data['interactive_p50'] * 1e3:.3f}",
            f"{data['interactive_p99'] * 1e3:.3f}",
        ]
        for arm, data in (("governor off", off), ("governor on", on))
    ]
    publish(
        "monitoring",
        format_table(
            ["arm", "alert@", "reject peak@", "rejects", "p50 ms", "p99 ms"],
            rows,
            "Overload feedback: burn-rate alert vs admission damage "
            f"({OVERLOAD_SESSIONS} sessions, "
            f"deterministic={deterministic}, transparent={transparent}, "
            f"p99 gain {p99_gain:.2f}x)",
        ),
    )

    gates = {
        "monitor_deterministic": (1.0 if deterministic else 0.0, 1.0),
        "monitor_transparent": (1.0 if transparent else 0.0, 1.0),
    }
    if FULL_FIDELITY:
        gates["alert_led_rejects"] = (1.0 if alert_led else 0.0, 1.0)
        gates["governor_p99_gain"] = (p99_gain, P99_GAIN_FLOOR)

    trackers = monitor.trackers
    payload = {
        "scale": MONITOR_SCALE,
        "seed": SEED,
        "sessions": SESSIONS,
        "ops_per_session": OPS_PER_SESSION,
        "dashboard_bytes": len(dash_a),
        "monitoring": {
            "interval_seconds": monitor.spec.interval_seconds,
            "epochs": monitor.sampler.epoch,
            "series": len(monitor.sampler.series_names()),
            "alerts": monitor.log.as_dict(),
            "slos": {
                name: {
                    "compliance": tracker.compliance(),
                    "total_good": tracker.total_good,
                    "total_bad": tracker.total_bad,
                }
                for name, tracker in sorted(trackers.items())
            },
            "overload": {
                "seed": overload["seed"],
                "sessions": overload["sessions"],
                "ops_per_session": overload["ops_per_session"],
                "alert_led_rejects": alert_led,
                "p99_gain": p99_gain,
                "governor_sheds": overload["governor_sheds"],
                "governor_off": _slim_arm(off),
                "governor_on": _slim_arm(on),
            },
        },
    }
    env = envelope("monitoring", pr=10, payload=payload, gates=gates)
    publish_envelope(env)
    write_trajectory(env)

    assert deterministic
    assert transparent
    if FULL_FIDELITY:
        assert alert_led
        assert p99_gain >= P99_GAIN_FLOOR

#!/usr/bin/env python3
"""Validate every repo-root ``BENCH_PR<n>.json`` trajectory artifact.

Each PR that gated its acceptance on a benchmark records the measured
values and their floors in a repo-root artifact using the repro-bench/v1
envelope (see benchmarks/conftest.py).  This check, run in CI, keeps the
whole trajectory honest:

* every artifact must parse and carry the envelope schema
  (``schema``/``bench``/``pr``/``gates``/``payload``), with the ``pr``
  field matching its filename;
* every recorded gate must still satisfy ``value >= floor`` — a PR that
  regenerates an artifact with a regressed speedup fails here, not in a
  human review;
* with ``--results DIR``, the per-bench JSON outputs are also checked
  (must parse; enveloped ones are schema-validated the same way);
* envelopes whose payload carries a ``latency`` block (the observability
  bench) get each histogram summary checked: numeric fields, a
  non-negative count, and ordered percentiles (p50 <= p95 <= p99);
* envelopes whose payload carries a ``monitoring`` block (the PR 10
  telemetry bench) get the sampled timeline, SLO compliance summary,
  alert log, and overload-experiment arms schema-checked.

Usage: ``python benchmarks/check_trajectory.py [--root PATH]
[--results benchmarks/results]``
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

ENVELOPE_SCHEMA = "repro-bench/v1"
_NAME = re.compile(r"BENCH_PR(\d+)\.json$")


def check_envelope(path: pathlib.Path, data: dict, errors: list[str]) -> None:
    """Validate one repro-bench/v1 envelope; append problems to errors."""
    where = str(path)
    if data.get("schema") != ENVELOPE_SCHEMA:
        errors.append(f"{where}: schema is {data.get('schema')!r}, "
                      f"expected {ENVELOPE_SCHEMA!r}")
        return
    for field in ("bench", "pr", "gates", "payload"):
        if field not in data:
            errors.append(f"{where}: missing {field!r}")
            return
    if not isinstance(data["gates"], dict):
        errors.append(f"{where}: gates must be an object")
        return
    for name, gate in data["gates"].items():
        if not isinstance(gate, dict) or not {
            "value", "floor"
        } <= gate.keys():
            errors.append(f"{where}: gate {name!r} needs value and floor")
            continue
        value, floor = gate["value"], gate["floor"]
        if not all(isinstance(x, (int, float)) for x in (value, floor)):
            errors.append(f"{where}: gate {name!r} is not numeric")
            continue
        if value < floor:
            errors.append(
                f"{where}: gate {name!r} regressed — recorded "
                f"{value:.3f} below its {floor:.3f} floor"
            )
        else:
            print(f"ok: {path.name} gate {name} = {value:.3f} "
                  f"(floor {floor:.3f})")
    payload = data.get("payload")
    if isinstance(payload, dict) and "latency" in payload:
        check_latency_block(path, payload["latency"], errors)
    if isinstance(payload, dict) and "serving" in payload:
        check_serving_block(path, payload["serving"], errors)
    if isinstance(payload, dict) and "monitoring" in payload:
        check_monitoring_block(path, payload["monitoring"], errors)


def check_latency_block(
    path: pathlib.Path, latency, errors: list[str]
) -> None:
    """Validate a payload's latency-percentile block (observability bench)."""
    where = str(path)
    if not isinstance(latency, dict) or not latency:
        errors.append(f"{where}: latency block must be a non-empty object")
        return
    ok = 0
    for key, summary in latency.items():
        if not isinstance(summary, dict) or not {
            "count", "p50", "p95", "p99"
        } <= summary.keys():
            errors.append(
                f"{where}: latency {key!r} needs count/p50/p95/p99"
            )
            continue
        fields = [summary[f] for f in ("count", "p50", "p95", "p99")]
        if not all(isinstance(x, (int, float)) for x in fields):
            errors.append(f"{where}: latency {key!r} is not numeric")
            continue
        count, p50, p95, p99 = fields
        if count < 0:
            errors.append(f"{where}: latency {key!r} has negative count")
        elif not (0 <= p50 <= p95 <= p99):
            errors.append(
                f"{where}: latency {key!r} percentiles unordered "
                f"({p50!r} / {p95!r} / {p99!r})"
            )
        else:
            ok += 1
    if ok:
        print(f"ok: {path.name} latency block ({ok} histogram(s))")


def _check_latency_summary(where: str, key: str, summary, errors) -> bool:
    """One histogram summary: numeric, non-negative, ordered percentiles."""
    if not isinstance(summary, dict) or not {
        "count", "p50", "p95", "p99"
    } <= summary.keys():
        errors.append(f"{where}: latency {key!r} needs count/p50/p95/p99")
        return False
    fields = [summary[f] for f in ("count", "p50", "p95", "p99")]
    if not all(isinstance(x, (int, float)) for x in fields):
        errors.append(f"{where}: latency {key!r} is not numeric")
        return False
    count, p50, p95, p99 = fields
    if count < 0:
        errors.append(f"{where}: latency {key!r} has negative count")
        return False
    if not 0 <= p50 <= p95 <= p99:
        errors.append(
            f"{where}: latency {key!r} percentiles unordered "
            f"({p50!r} / {p95!r} / {p99!r})"
        )
        return False
    return True


def check_serving_block(
    path: pathlib.Path, serving, errors: list[str]
) -> None:
    """Validate a serving bench payload: per-class and per-tenant QoS.

    Every class entry needs a positive weight, non-negative quanta and an
    ordered latency summary; every tenant entry needs its class name and
    a latency summary of its own (the per-tenant percentile block PR 9
    gates on).
    """
    where = str(path)
    if not isinstance(serving, dict):
        errors.append(f"{where}: serving block must be an object")
        return
    classes = serving.get("classes")
    tenants = serving.get("tenants")
    if not isinstance(classes, dict) or not classes:
        errors.append(f"{where}: serving block needs non-empty classes")
        return
    ok = 0
    for name, entry in classes.items():
        if not isinstance(entry, dict) or "latency" not in entry:
            errors.append(f"{where}: serving class {name!r} needs latency")
            continue
        weight = entry.get("weight")
        quanta = entry.get("quanta")
        if not isinstance(weight, (int, float)) or weight <= 0:
            errors.append(
                f"{where}: serving class {name!r} needs a positive weight"
            )
            continue
        if not isinstance(quanta, int) or quanta < 0:
            errors.append(
                f"{where}: serving class {name!r} needs non-negative quanta"
            )
            continue
        if _check_latency_summary(
            where, f"class {name}", entry["latency"], errors
        ):
            ok += 1
    if not isinstance(tenants, dict) or not tenants:
        errors.append(f"{where}: serving block needs non-empty tenants")
        return
    for name, entry in tenants.items():
        if not isinstance(entry, dict) or "latency" not in entry:
            errors.append(f"{where}: serving tenant {name!r} needs latency")
            continue
        if entry.get("class") not in classes:
            errors.append(
                f"{where}: serving tenant {name!r} maps to unknown class "
                f"{entry.get('class')!r}"
            )
            continue
        _check_latency_summary(
            where, f"tenant {name}", entry["latency"], errors
        )
    if ok:
        print(f"ok: {path.name} serving block ({ok} class(es), "
              f"{len(tenants)} tenant(s))")


def check_monitoring_block(
    path: pathlib.Path, monitoring, errors: list[str]
) -> None:
    """Validate a monitoring bench payload (PR 10).

    The block carries the sampled timeline shape (positive epoch
    interval, epoch/series counts), the per-SLO compliance summary
    (fractions in [0, 1], non-negative integer event totals), the alert
    log (integer epochs, sequence numbers strictly increasing from 0),
    and the overload experiment's two arms with ordered numeric
    percentiles.
    """
    where = str(path)
    if not isinstance(monitoring, dict):
        errors.append(f"{where}: monitoring block must be an object")
        return
    interval = monitoring.get("interval_seconds")
    if not isinstance(interval, (int, float)) or interval <= 0:
        errors.append(f"{where}: monitoring needs a positive interval")
        return
    for field in ("epochs", "series"):
        value = monitoring.get(field)
        if not isinstance(value, int) or value < 0:
            errors.append(
                f"{where}: monitoring {field!r} must be a non-negative int"
            )
            return
    slos = monitoring.get("slos")
    if not isinstance(slos, dict) or not slos:
        errors.append(f"{where}: monitoring needs non-empty slos")
        return
    for name, entry in slos.items():
        if not isinstance(entry, dict) or not {
            "compliance", "total_good", "total_bad"
        } <= entry.keys():
            errors.append(
                f"{where}: monitoring slo {name!r} needs "
                "compliance/total_good/total_bad"
            )
            continue
        compliance = entry["compliance"]
        good, bad = entry["total_good"], entry["total_bad"]
        if not isinstance(compliance, (int, float)) or not (
            0.0 <= compliance <= 1.0
        ):
            errors.append(
                f"{where}: monitoring slo {name!r} compliance "
                f"{compliance!r} outside [0, 1]"
            )
        if not all(isinstance(x, int) and x >= 0 for x in (good, bad)):
            errors.append(
                f"{where}: monitoring slo {name!r} event totals must be "
                "non-negative ints"
            )
    alerts = monitoring.get("alerts")
    if not isinstance(alerts, list):
        errors.append(f"{where}: monitoring alerts must be a list")
        return
    for i, event in enumerate(alerts):
        if not isinstance(event, dict) or not {
            "seq", "epoch", "rule", "state"
        } <= event.keys():
            errors.append(
                f"{where}: monitoring alert #{i} needs "
                "seq/epoch/rule/state"
            )
            return
        if event["seq"] != i:
            errors.append(
                f"{where}: monitoring alert #{i} has seq {event['seq']!r}"
                " — the log must be densely numbered from 0"
            )
            return
        if not isinstance(event["epoch"], int) or event["epoch"] < 0:
            errors.append(
                f"{where}: monitoring alert #{i} epoch must be a "
                "non-negative int"
            )
            return
        if event["state"] not in ("firing", "resolved"):
            errors.append(
                f"{where}: monitoring alert #{i} has unknown state "
                f"{event['state']!r}"
            )
            return
    overload = monitoring.get("overload")
    if not isinstance(overload, dict):
        errors.append(f"{where}: monitoring needs an overload block")
        return
    gain = overload.get("p99_gain")
    if not isinstance(gain, (int, float)) or gain < 0:
        errors.append(
            f"{where}: monitoring overload p99_gain must be non-negative"
        )
        return
    if not isinstance(overload.get("alert_led_rejects"), bool):
        errors.append(
            f"{where}: monitoring overload alert_led_rejects must be a bool"
        )
        return
    arms = 0
    for arm in ("governor_off", "governor_on"):
        entry = overload.get(arm)
        if not isinstance(entry, dict) or not {
            "interactive_p50", "interactive_p99", "interactive_rejects"
        } <= entry.keys():
            errors.append(
                f"{where}: monitoring overload arm {arm!r} needs "
                "interactive p50/p99/rejects"
            )
            continue
        p50, p99 = entry["interactive_p50"], entry["interactive_p99"]
        rejects = entry["interactive_rejects"]
        if not all(isinstance(x, (int, float)) for x in (p50, p99)) or not (
            0 <= p50 <= p99
        ):
            errors.append(
                f"{where}: monitoring overload arm {arm!r} percentiles "
                f"unordered ({p50!r} / {p99!r})"
            )
            continue
        if not isinstance(rejects, int) or rejects < 0:
            errors.append(
                f"{where}: monitoring overload arm {arm!r} rejects must "
                "be a non-negative int"
            )
            continue
        arms += 1
    if arms == 2:
        print(
            f"ok: {path.name} monitoring block ({len(alerts)} alert(s), "
            f"{len(slos)} slo(s), p99 gain {gain:.2f}x)"
        )


def check_trajectory(root: pathlib.Path, errors: list[str]) -> int:
    artifacts = sorted(root.glob("BENCH_PR*.json"))
    if not artifacts:
        errors.append(f"{root}: no BENCH_PR*.json trajectory artifacts")
        return 0
    for path in artifacts:
        match = _NAME.search(path.name)
        if match is None:
            errors.append(f"{path}: unrecognized trajectory filename")
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: unreadable ({exc})")
            continue
        check_envelope(path, data, errors)
        if isinstance(data, dict) and data.get("pr") != int(match.group(1)):
            errors.append(
                f"{path}: envelope pr={data.get('pr')!r} does not match "
                "the filename"
            )
    return len(artifacts)


def check_results(results: pathlib.Path, errors: list[str]) -> int:
    paths = sorted(results.glob("*.json"))
    for path in paths:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: unreadable ({exc})")
            continue
        if isinstance(data, dict) and "schema" in data:
            check_envelope(path, data, errors)
        else:
            print(f"ok: {path} (legacy payload, parses)")
    return len(paths)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root holding BENCH_PR*.json (default: repo root)",
    )
    parser.add_argument(
        "--results",
        type=pathlib.Path,
        default=None,
        help="also validate the per-bench JSON outputs in this directory",
    )
    args = parser.parse_args(argv)

    errors: list[str] = []
    n_traj = check_trajectory(args.root, errors)
    n_res = check_results(args.results, errors) if args.results else 0
    print(f"checked {n_traj} trajectory artifact(s), {n_res} result file(s)")
    for problem in errors:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 7: Q18's cache hit statistics (sequential vs temp reads)."""

from conftest import compute_once, publish

from repro.harness.experiments import fig9_temp, table7_q18


def test_table7_q18_stats(benchmark, runner, shared_cache):
    fig9 = compute_once(shared_cache, "fig9", lambda: fig9_temp(runner))
    result = benchmark.pedantic(
        lambda: table7_q18(runner, fig9), rounds=1, iterations=1
    )
    publish("table7_q18", result.render())

    hst = {row.label: row for row in result.sections["hstorage"]}
    lru = {row.label: row for row in result.sections["lru"]}
    # hStorage-DB: temp reads are 100% hits — cached for their lifetime.
    assert hst["Temp. read"].ratio == 1.0
    # LRU cannot keep temp data long enough (paper: 1.8%).
    assert lru["Temp. read"].ratio < hst["Temp. read"].ratio
    # Sequential data is not cached by hStorage-DB (paper: 0%).
    assert hst["Sequential"].ratio < 0.05

"""Three-tier HOT/WARM/COLD configuration (DESIGN.md §3).

Runs representative queries of each request class (sequential Q1,
random Q9, temp-heavy Q18) under the paper's configurations plus the
``tier3`` chain (priority-managed NVMe over priority-managed SSD over
HDD) and reports execution times and where blocks ended up in the
hierarchy.  The expectation mirrors the DLM literature: the three-tier
chain sits between hStorage-DB and SSD-only for random-request queries,
because the hottest priorities are served from the NVMe tier.
"""

from conftest import publish

from repro.harness.configs import build_database
from repro.harness.report import format_table
from repro.tpch.queries import query_builder, query_label
from repro.tpch.workload import load_tpch

KINDS = ("hdd", "lru", "hstorage", "tier3", "ssd")
QUERIES = (1, 9, 18)


def _run(runner, kind: str, qid: int):
    config = runner.config("hstorage", runner.settings.scale).with_(kind=kind)
    db = build_database(config)
    load_tpch(db, data=runner.data(runner.settings.scale))
    result = db.run_query(
        query_builder(qid), label=query_label(qid), collect=False
    )
    backend = db.storage.backend
    occupancy = {
        tier.name: tier.cache.occupancy
        for tier in getattr(backend, "caching_tiers", [])
        if tier.cache is not None
    }
    return result.sim_seconds, occupancy, db.storage.scheduler.dispatches


def test_tier3_dlm(benchmark, runner):
    def experiment():
        return {
            (qid, kind): _run(runner, kind, qid)
            for qid in QUERIES
            for kind in KINDS
        }

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for qid in QUERIES:
        for kind in KINDS:
            seconds, occupancy, dispatches = outcome[(qid, kind)]
            rows.append([
                f"Q{qid}", kind, round(seconds, 4),
                occupancy.get("nvme", "-"), occupancy.get("ssd", "-"),
                dispatches,
            ])
    publish(
        "tier3_dlm",
        format_table(
            ["query", "config", "seconds", "nvme blocks", "ssd blocks",
             "dispatches"],
            rows,
            "Three-tier HOT/WARM/COLD vs the paper's configurations",
        ),
    )

    for qid in QUERIES:
        seconds = {kind: outcome[(qid, kind)][0] for kind in KINDS}
        # The three-tier chain is never worse than the HDD baseline and
        # never beats the all-flash ideal.
        assert seconds["tier3"] <= seconds["hdd"] * 1.02, qid
        assert seconds["tier3"] >= seconds["ssd"] * 0.98, qid
    # Random-request queries actually use the HOT tier.
    _, occupancy, _ = outcome[(9, "tier3")]
    assert occupancy["nvme"] > 0
    # Q9 runs at least as fast on three tiers as on the two-tier chain:
    # its hottest blocks are served from NVMe instead of the SSD.
    assert outcome[(9, "tier3")][0] <= outcome[(9, "hstorage")][0] * 1.02

"""Figure 12: Q9/Q18 standalone vs average time in the throughput test."""

from conftest import compute_once, publish

from repro.harness.experiments import fig12_concurrency, table9_throughput


def test_fig12_concurrency(benchmark, runner, shared_cache):
    throughput = compute_once(
        shared_cache, "throughput", lambda: table9_throughput(runner)
    )
    result = benchmark.pedantic(
        lambda: fig12_concurrency(runner, throughput), rounds=1, iterations=1
    )
    publish("fig12_concurrency", result.render())

    for qid in (9, 18):
        co = result.in_throughput[qid]
        # Under concurrency hStorage-DB protects its important blocks from
        # cache pollution: it stays ahead of LRU (paper: 2.8x for Q9,
        # 1.85x for Q18 — our magnitudes are compressed, see
        # EXPERIMENTS.md).
        assert co["hstorage"] < co["lru"] * 1.05, (qid, co)
        # And concurrency hurts every disk-bound configuration.
        assert co["hdd"] >= result.standalone[qid]["hdd"] * 0.95

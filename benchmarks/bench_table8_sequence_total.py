"""Table 8: total execution time of the power-test sequence."""

from conftest import compute_once, publish

from repro.harness.experiments import PAPER_TABLE8, fig11_table8_sequence


def test_table8_sequence_totals(benchmark, runner, shared_cache):
    result = benchmark.pedantic(
        lambda: compute_once(
            shared_cache, "sequence", lambda: fig11_table8_sequence(runner)
        ),
        rounds=1,
        iterations=1,
    )
    publish("table8_sequence_total", result.render())

    totals = result.totals
    # Ordering: SSD-only < hStorage-DB < HDD-only (paper: 24k < 39k < 86k).
    assert totals["ssd"] < totals["hstorage"] < totals["hdd"]
    # hStorage-DB improves significantly over the baseline (paper: 2.2x).
    measured = totals["hdd"] / totals["hstorage"]
    paper = PAPER_TABLE8["hdd"] / PAPER_TABLE8["hstorage"]
    assert measured > 1.3, f"sequence speedup {measured:.2f}x too small"
    print(
        f"\nsequence speedup hdd/hstorage: measured {measured:.2f}x, "
        f"paper {paper:.2f}x"
    )

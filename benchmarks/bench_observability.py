"""Observability benchmark: bit-identity, closure and latency percentiles
(ISSUE 8).

Three measurements of the telemetry machinery:

* **bit-identity** — the same query sequence on two identical databases,
  one with a full Observer (metrics + tracing) attached, one without;
  rows, the simulated clock, request/block totals and buffer-pool
  counters must match exactly (gate ``obs_identical``, floor 1.0);
* **profile closure** — ``explain_analyze`` over representative queries
  in all three executor modes; per-node self-times must sum exactly to
  each query's simulated elapsed seconds (gate ``profile_closure``,
  floor 1.0);
* **latency percentiles** — exact p50/p95/p99 per QoS class (the
  ``priority`` label on ``io_dispatch_seconds``) plus device and query
  latency histograms, recorded in the payload's ``latency`` block, which
  ``benchmarks/check_trajectory.py`` schema-validates.

Results go to results/observability.{txt,json}; full-fidelity runs also
refresh the repo-root ``BENCH_PR8.json`` trajectory artifact.
"""

from __future__ import annotations

from conftest import (
    BENCH_SCALE,
    envelope,
    publish,
    publish_envelope,
    write_trajectory,
)

from repro.harness.configs import StorageConfig, build_database
from repro.harness.report import format_table
from repro.obs import Observer
from repro.tpch.datagen import generate
from repro.tpch.queries import query_builder, query_label
from repro.tpch.streams import POWER_ORDER
from repro.tpch.workload import load_tpch

OBS_SCALE = max(0.02, round(0.1 * BENCH_SCALE, 3))
BENCH_QUERIES = (
    tuple(POWER_ORDER) if BENCH_SCALE >= 1.0 else (1, 3, 6, 14)
)
CLOSURE_QUERIES = (1, 3, 6)
EXECUTORS = ("row", "vectorized", "push")
SEED = 7


def _build(data, observer=None, executor: str = "vectorized"):
    db = build_database(
        StorageConfig(
            kind="hstorage",
            bufferpool_pages=32,
            executor=executor,
            observer=observer,
        )
    )
    load_tpch(db, data=data)
    db.reset_measurements()
    if observer is not None:
        observer.reset()
    return db


def _run_arm(data, observer):
    """One query sequence; returns the per-query identity fingerprint."""
    db = _build(data, observer)
    snaps = []
    for qid in BENCH_QUERIES:
        result = db.run_query(query_builder(qid), label=query_label(qid))
        overall = db.storage.stats.overall
        snaps.append(
            {
                "query": query_label(qid),
                "rows": len(result.rows),
                "sim_seconds": result.sim_seconds,
                "clock_now": db.clock.now,
                "requests": overall.total.requests,
                "blocks": overall.total.blocks,
                "pool_hits": db.pool.hits,
                "pool_misses": db.pool.misses,
            }
        )
    if observer is not None:
        db.storage_manager.recovery_summary()  # publish recovery gauges
    return snaps


def _identity(data) -> dict:
    observer = Observer()
    off = _run_arm(data, None)
    on = _run_arm(data, observer)
    return {
        "queries": len(BENCH_QUERIES),
        "matched": sum(1 for a, b in zip(off, on) if a == b),
        "snapshots": on,
        "telemetry": observer.telemetry()["metrics"],
    }


def _closure(data) -> dict:
    """Max |Σ node self-time − sim elapsed| across executors/queries."""
    entries = []
    worst = 0.0
    for executor in EXECUTORS:
        db = _build(data, executor=executor)
        for qid in CLOSURE_QUERIES:
            profile = db.explain_analyze(
                query_builder(qid), label=query_label(qid)
            )
            residual = abs(
                profile.total_self_seconds() - profile.sim_seconds
            )
            worst = max(worst, residual)
            entries.append(
                {
                    "executor": executor,
                    "query": profile.label,
                    "sim_seconds": profile.sim_seconds,
                    "residual_seconds": residual,
                    "nodes": sum(1 for _ in profile.root.walk()),
                }
            )
    return {"entries": entries, "worst_residual_seconds": worst}


def _latency(metrics_snapshot: dict) -> dict:
    """The percentile block: every collected latency histogram summary."""
    return dict(metrics_snapshot["histograms"])


def test_observability(benchmark):
    data = generate(OBS_SCALE, seed=SEED)

    def experiment():
        return {"identity": _identity(data), "closure": _closure(data)}

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    identity = outcome["identity"]
    closure = outcome["closure"]
    latency = _latency(identity["telemetry"])

    qos_rows = [
        [key, s["count"], f"{s['p50'] * 1e3:.3f}", f"{s['p95'] * 1e3:.3f}",
         f"{s['p99'] * 1e3:.3f}"]
        for key, s in sorted(latency.items())
        if key.startswith("io_dispatch_seconds")
    ]
    publish(
        "observability",
        format_table(
            ["histogram", "count", "p50 ms", "p95 ms", "p99 ms"],
            qos_rows,
            "I/O dispatch latency per QoS class "
            f"(identity {identity['matched']}/{identity['queries']}, "
            f"worst closure residual "
            f"{closure['worst_residual_seconds']:.2e}s)",
        ),
    )

    gates = {
        "obs_identical": (
            identity["matched"] / identity["queries"], 1.0
        ),
        "profile_closure": (
            1.0 if closure["worst_residual_seconds"] < 1e-9 else 0.0, 1.0
        ),
    }
    payload = {
        "scale": OBS_SCALE,
        "queries": [query_label(qid) for qid in BENCH_QUERIES],
        "identity": {
            "queries": identity["queries"],
            "matched": identity["matched"],
            "snapshots": identity["snapshots"],
        },
        "closure": closure,
        "latency": latency,
    }
    env = envelope("observability", pr=8, payload=payload, gates=gates)
    publish_envelope(env)
    write_trajectory(env)

    assert identity["matched"] == identity["queries"]
    assert closure["worst_residual_seconds"] < 1e-9
    # At least one QoS class collected real latency samples.
    assert qos_rows and all(int(row[1]) > 0 for row in qos_rows)

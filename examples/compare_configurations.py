#!/usr/bin/env python3
"""Compare the four storage configurations on one query (mini Figure 6).

Runs any TPC-H query (default Q9) under HDD-only, LRU, hStorage-DB and
SSD-only, each on a fresh database, and prints the execution times and
cache statistics side by side.

Run:  python examples/compare_configurations.py [query-number]
"""

import sys

from repro.harness.configs import CONFIG_LABELS, CONFIG_NAMES, StorageConfig, build_database
from repro.tpch.datagen import generate
from repro.tpch.queries import query_builder, query_label
from repro.tpch.workload import load_tpch

SCALE = 0.3


def main() -> None:
    qid = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    data = generate(scale=SCALE)

    print(f"{query_label(qid)} under the four configurations "
          f"(scale {SCALE}, fresh cold cache each):\n")
    print(f"{'configuration':14s} {'time (s)':>9s} {'cache hits':>11s} "
          f"{'blocks':>8s}")
    baseline = None
    for kind in CONFIG_NAMES:
        config = StorageConfig(
            kind=kind, cache_blocks=700, bufferpool_pages=64,
            work_mem_rows=750,
        )
        db = build_database(config)
        load_tpch(db, data=data)
        res = db.run_query(query_builder(qid), label=query_label(qid))
        total = res.stats.total
        if baseline is None:
            baseline = res.sim_seconds
        print(
            f"{CONFIG_LABELS[kind]:14s} {res.sim_seconds:9.3f} "
            f"{total.cache_hits:11d} {total.blocks:8d}"
            f"   ({baseline / res.sim_seconds:4.1f}x vs HDD-only)"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: load a mini TPC-H database under hStorage-DB and run Q9.

Shows the full pipeline of the paper: the query plan with its effective
levels, the priorities Rule 2 assigns, and the cache statistics the
priority-managed SSD cache produces.

Run:  python examples/quickstart.py
"""

from repro.core.levels import compute_effective_levels
from repro.harness.configs import build_database, hstorage_config
from repro.storage.requests import RequestType
from repro.tpch.queries import build_query
from repro.tpch.workload import load_tpch


def main() -> None:
    # A hybrid storage system: priority-managed SSD cache over an HDD.
    config = hstorage_config(
        cache_blocks=1024, bufferpool_pages=96, work_mem_rows=800
    )
    db = build_database(config)
    meta = load_tpch(db, scale=0.3)
    print(f"Loaded TPC-H at scale {meta.scale}: {meta.counts}")
    print(f"Database size: {db.database_pages()} pages of 8 KiB\n")

    plan = build_query(db, 9)
    levels = compute_effective_levels(plan)
    print("Q9 plan (with effective levels):")
    print(plan.explain(levels=levels))

    result = db.run_query(plan, label="Q9")
    print(f"\nQ9 -> {result.row_count} rows "
          f"in {result.sim_seconds:.3f} simulated seconds")
    print(f"first rows: {result.rows[:3]}")

    print("\nI/O classification (the paper's Figure 4 view):")
    for rtype in RequestType:
        counts = result.stats.by_type.get(rtype)
        if counts and counts.requests:
            print(
                f"  {rtype.value:12s} requests={counts.requests:6d} "
                f"blocks={counts.blocks:7d} hits={counts.cache_hits:7d}"
            )

    print("\nPer-priority cache statistics (the paper's Table 5 view):")
    for priority, counts in sorted(result.stats.by_priority.items()):
        print(
            f"  priority {priority}: blocks={counts.blocks:7d} "
            f"hits={counts.cache_hits:7d} ({counts.hit_ratio:.0%})"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: load a mini TPC-H database under hStorage-DB and run Q9,
then demonstrate transactions, the write-ahead log, crash recovery,
concurrency control and deterministic fault injection.

Shows the full pipeline of the paper: the query plan with its effective
levels, the priorities Rule 2 assigns, the cache statistics the
priority-managed SSD cache produces — and the log-class traffic that the
policy table maps to the write-buffer policy (Table 3), exercised by a
begin/commit/crash/recover round trip.

Run:  python examples/quickstart.py
"""

from repro.core.levels import compute_effective_levels
from repro.core.semantics import ContentType, SemanticInfo
from repro.db.tuples import schema
from repro.db.txn import InterleavedScheduler, recover, simulate_crash
from repro.harness.configs import build_database, hstorage_config
from repro.storage.requests import RequestType
from repro.tpch.queries import build_query
from repro.tpch.workload import load_tpch


def main() -> None:
    # A hybrid storage system: priority-managed SSD cache over an HDD.
    config = hstorage_config(
        cache_blocks=1024, bufferpool_pages=96, work_mem_rows=800
    )
    db = build_database(config)
    meta = load_tpch(db, scale=0.3)
    print(f"Loaded TPC-H at scale {meta.scale}: {meta.counts}")
    print(f"Database size: {db.database_pages()} pages of 8 KiB\n")

    plan = build_query(db, 9)
    levels = compute_effective_levels(plan)
    print("Q9 plan (with effective levels):")
    print(plan.explain(levels=levels))

    result = db.run_query(plan, label="Q9")
    print(f"\nQ9 -> {result.row_count} rows "
          f"in {result.sim_seconds:.3f} simulated seconds")
    print(f"first rows: {result.rows[:3]}")

    # The push-based morsel executor (DESIGN.md §12) runs the identical
    # simulated workload — same rows, same simulated seconds — just
    # faster in host time (fused kernels for the Q1/Q6 shapes).
    push_db = build_database(config.with_(executor="push"))
    load_tpch(push_db, scale=0.3)
    push_result = push_db.run_query(build_query(push_db, 9), label="Q9")
    assert push_result.rows == result.rows
    assert push_result.sim_seconds == result.sim_seconds
    print(f"push executor -> identical rows and simulated clock "
          f"({push_result.sim_seconds:.3f} s)")

    print("\nI/O classification (the paper's Figure 4 view):")
    for rtype in RequestType:
        counts = result.stats.by_type.get(rtype)
        if counts and counts.requests:
            print(
                f"  {rtype.value:12s} requests={counts.requests:6d} "
                f"blocks={counts.blocks:7d} hits={counts.cache_hits:7d}"
            )

    print("\nPer-priority cache statistics (the paper's Table 5 view):")
    for priority, counts in sorted(result.stats.by_priority.items()):
        print(
            f"  priority {priority}: blocks={counts.blocks:7d} "
            f"hits={counts.cache_hits:7d} ({counts.hit_ratio:.0%})"
        )

    txn_demo()


def txn_demo() -> None:
    """Begin/commit/crash/recover on a small accounts table."""
    print("\n--- Transactions, WAL and crash recovery (DESIGN.md §8) ---")
    db = build_database(hstorage_config(cache_blocks=256, bufferpool_pages=16))
    accounts = db.create_table(
        "accounts", schema(("id", "int"), ("balance", "int"))
    )
    accounts.heap.bulk_load((i, 100) for i in range(10))
    db.enable_wal()  # baseline checkpoint; mutations below are logged
    sem = SemanticInfo.update(ContentType.TABLE, accounts.oid)

    with db.begin() as txn:  # committed: survives the crash
        accounts.heap.update(db.pool, (0, 0), (0, 58), sem, txn=txn)
        accounts.heap.update(db.pool, (0, 1), (1, 142), sem, txn=txn)
    print(f"committed transfer of 42 (txn {txn.txid}); log forced at commit")

    loser = db.begin()  # in flight at the crash: must roll back
    accounts.heap.update(db.pool, (0, 2), (2, 0), sem, loser)
    db.txn_manager.wal.flush()  # log buffer reaches disk ... then power-off
    print(f"transaction {loser.txid} still open ... pulling the plug")

    simulate_crash(db)
    report = recover(db)
    print(
        f"recovered: {report.log_records_scanned} log records scanned, "
        f"{report.redo_applied} redone, {report.undo_applied} undone, "
        f"losers={sorted(report.losers)}"
    )
    rows = dict(
        r for _, r in accounts.heap.scan(
            db.pool, SemanticInfo.table_scan(accounts.oid)
        )
    )
    print(f"balances after recovery: 0 -> {rows[0]}, 1 -> {rows[1]}, "
          f"2 -> {rows[2]} (loser undone)")
    assert (rows[0], rows[1], rows[2]) == (58, 142, 100)

    log = db.storage.stats.overall.by_type[RequestType.LOG]
    print(
        f"log-class I/O (write-buffer QoS, Table 3): "
        f"{log.requests} requests, {log.blocks} blocks"
    )

    concurrency_demo()


def concurrency_demo() -> None:
    """Two conflicting transactions under the interleaved scheduler:
    opposite lock orders close a waits-for cycle, the youngest is
    victimised, rolled back through CLRs, and retried (DESIGN.md §10)."""
    print("\n--- Concurrency control: locks, MVCC, deadlock (DESIGN.md §10) ---")
    db = build_database(hstorage_config(cache_blocks=256, bufferpool_pages=16))
    accounts = db.create_table(
        "accounts", schema(("id", "int"), ("balance", "int"))
    )
    accounts.heap.bulk_load((i, 100) for i in range(4))
    db.enable_wal()
    sched = InterleavedScheduler(db, seed=7)

    def transfer(src, dst, amount, name):
        from repro.db.txn import DeadlockError

        def body(ctx):
            while True:
                ctx.begin()
                try:
                    yield from ctx.lock_row(accounts, (0, src))
                    yield  # interleave point: the other task locks now
                    yield from ctx.lock_row(accounts, (0, dst))
                    a = ctx.fetch(accounts, (0, src))
                    b = ctx.fetch(accounts, (0, dst))
                    ctx.update(accounts, (0, src), (src, a[1] - amount))
                    ctx.update(accounts, (0, dst), (dst, b[1] + amount))
                    ctx.commit()
                    print(f"  {name}: committed {amount} ({src} -> {dst})")
                    return
                except DeadlockError:
                    print(f"  {name}: deadlock victim, rolled back; retrying")
                    ctx.abort()
                    yield

        return body

    sched.spawn(transfer(0, 1, 42, "t1"), "t1")
    sched.spawn(transfer(1, 0, 7, "t2"), "t2")  # opposite order: deadlock
    # A snapshot reader sees one consistent image throughout.
    snap = db.txn_manager.mvcc.take_snapshot()
    sched.run()
    stats = db.txn_manager.locks.stats
    print(
        f"  lock waits={stats.waits} deadlocks={stats.deadlocks} "
        f"victims={stats.victims}"
    )
    fetch = SemanticInfo.random_access(ContentType.TABLE, accounts.oid, 0)
    mvcc = db.txn_manager.mvcc
    old = [
        accounts.heap.fetch_visible(db.pool, (0, i), fetch, snap, mvcc)[1]
        for i in range(2)
    ]
    new = [accounts.heap.fetch(db.pool, (0, i), fetch)[1] for i in range(2)]
    print(f"  snapshot view (pre-transfer): {old}, current: {new}")
    assert old == [100, 100] and sum(new) == 200
    assert stats.deadlocks >= 1

    chaos_demo()


def chaos_demo() -> None:
    """Inject corruption into the storage stack and watch the read path
    and the background scrubber repair it — query results stay golden,
    and whatever cannot be repaired is loud, never silent (DESIGN.md §13)."""
    print("\n--- Fault injection and end-to-end integrity (DESIGN.md §13) ---")
    from repro.harness.chaos import run_chaos

    report = run_chaos(
        profile="corrupt", seed=3, scale=0.02, queries=(1, 3, 6, 14)
    )
    rec = report.recovery
    print(
        f"  injected {report.fault_events} faults "
        f"({report.fault_counters['corrupt']} corruptions): "
        f"{rec['corruptions_detected']} detected, "
        f"{rec['corruptions_repaired']} repaired, "
        f"{rec['unrepairable']} unrepairable"
    )
    s = report.scrubber
    print(
        f"  scrubber: {s['epochs']} epochs, {s['blocks_scrubbed']} blocks "
        f"audited, {s['repairs']} repairs (rides the MIGRATE QoS path)"
    )
    print(
        f"  queries golden-identical: {report.matched}/{len(report.queries)}, "
        f"silent mismatches: {report.silent_mismatches}"
    )
    print(
        f"  trace fingerprint (same seed => same trace): "
        f"{report.trace_fingerprint[:16]}..."
    )
    assert report.verdict and report.silent_mismatches == 0

    trace_demo()


def trace_demo() -> None:
    """Deterministic observability: profile Q6, render its span tree and
    the per-QoS-class latency percentiles — all driven by the simulated
    clock, bit-identical run to run (DESIGN.md §14)."""
    print("\n--- Tracing, profiling and latency histograms (DESIGN.md §14) ---")
    from repro.obs import Observer
    from repro.tpch.queries import query_builder

    obs = Observer(enabled=False)  # silent while the database loads
    db = build_database(
        hstorage_config(
            cache_blocks=256, bufferpool_pages=16, observer=obs
        )
    )
    load_tpch(db, scale=0.05)
    db.reset_measurements()
    obs.reset()
    obs.enabled = True  # telemetry covers only the measured window

    profile = db.explain_analyze(query_builder(6), label="Q6")
    print(profile.render())
    print()
    print(obs.tracer.render(max_children=4, max_depth=4))

    print("\n  latency percentiles (exact, from integer-ns log buckets):")
    for key, hist in obs.metrics.histograms():
        s = hist.summary()
        print(
            f"    {key}: n={s['count']} "
            f"p50={s['p50'] * 1e3:.3f}ms p95={s['p95'] * 1e3:.3f}ms "
            f"p99={s['p99'] * 1e3:.3f}ms"
        )

    # The closure invariant: node self-times sum exactly to the query's
    # simulated elapsed time — every simulated second claimed once.
    assert abs(profile.total_self_seconds() - profile.sim_seconds) < 1e-9
    print(
        f"  closure: sum(node self) = {profile.total_self_seconds():.6f}s "
        f"= sim elapsed {profile.sim_seconds:.6f}s"
    )

    serving_demo()


def serving_demo() -> None:
    """Multi-tenant serving: seeded sessions per QoS class pass through
    admission control (token buckets + queue depth), share engine quanta
    by stride-scheduled weight, and report per-class latency percentiles
    — the whole run a pure function of the seed (DESIGN.md §15)."""
    print("\n--- Multi-tenant serving front-end (DESIGN.md §15) ---")
    from repro.serve import ServeConfig, default_tenants, run_serving

    config = ServeConfig(
        seed=7, tenants=default_tenants(sessions=2, ops=4)
    )
    report = run_serving(config, scale=0.02)
    print(f"  elapsed: {report.elapsed_seconds:.4f} simulated seconds")
    for name, cls in sorted(report.classes.items()):
        lat = cls["latency"]
        print(
            f"  {name:12s} weight={cls['weight']:.0f} "
            f"quanta={cls['quanta']:3d} done={cls['ops_completed']:2d} "
            f"deferred={cls['ops_deferred']:2d} "
            f"rejected={cls['ops_rejected']:2d} "
            f"p99={lat['p99'] * 1e3:.3f}ms"
        )

    # Determinism: the same config on a fresh database reproduces the
    # report byte for byte — admission verdicts, percentiles and all.
    replay = run_serving(config, scale=0.02)
    assert replay.to_json() == report.to_json()
    print("  replay with the same seed: byte-identical report")

    monitor_demo()


def monitor_demo() -> None:
    """Time-series monitoring: an epoch sampler scrapes the serving
    metrics into ring-buffer series, SLO trackers reduce each epoch to
    good/bad events, and burn-rate rules watch the error budget — the
    whole telemetry timeline replayable byte for byte (DESIGN.md §16)."""
    print("\n--- Time-series telemetry and SLO monitoring (DESIGN.md §16) ---")
    from repro.obs.alerts import default_monitor_spec
    from repro.obs.export import dashboard_json
    from repro.serve import ServeConfig, build_frontend, default_tenants

    def run():
        config = ServeConfig(
            seed=7,
            tenants=default_tenants(sessions=2, ops=4),
            monitor=default_monitor_spec(),
        )
        frontend = build_frontend(config, scale=0.02)
        frontend.run()
        return frontend

    frontend = run()
    monitor = frontend.monitor
    print(
        f"  sampled {monitor.sampler.samples_taken} epochs "
        f"({monitor.spec.interval_seconds * 1e3:.0f} ms each) into "
        f"{len(monitor.sampler.series_names())} series"
    )
    for name, tracker in sorted(monitor.trackers.items()):
        print(
            f"  SLO {name}: compliance={tracker.compliance():.4f} "
            f"(good={tracker.total_good} bad={tracker.total_bad})"
        )
    print(f"  alert transitions: {len(monitor.log.events)}")

    # Same-seed replay: the dashboard export — every series sample,
    # SLO window and alert transition — is byte-identical.
    dash = dashboard_json(monitor, governor=frontend.governor)
    replay = run()
    assert dashboard_json(replay.monitor, governor=replay.governor) == dash
    print(
        f"  replay with the same seed: byte-identical dashboard "
        f"({len(dash)} bytes)"
    )


if __name__ == "__main__":
    main()

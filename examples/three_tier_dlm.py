#!/usr/bin/env python3
"""Three-tier HOT/WARM/COLD storage: DLM-style data placement.

Builds a ``TierChain`` of a priority-managed NVMe tier over a
priority-managed SSD tier over an HDD, runs a random-request query (Q9)
and a temp-heavy query (Q18), and shows where the hierarchy put the
blocks: band-0 traffic (temporary data, the hottest random priority)
lands in the NVMe tier, the remaining caching priorities in the SSD
tier, and clean NVMe evictions waterfall into the SSD tier instead of
being dropped.

Run:  python examples/three_tier_dlm.py
"""

from repro.harness.configs import build_database, tier3_config
from repro.tpch.queries import build_query
from repro.tpch.workload import load_tpch


def describe_chain(db) -> None:
    chain = db.storage.backend
    print(f"tier chain: {chain.describe()}")
    for tier in chain.caching_tiers:
        print(
            f"  {tier.name:5s} capacity={tier.cache.capacity:5d} blocks  "
            f"admit_level<={tier.admit_level}  "
            f"demote_clean={tier.demote_clean}"
        )


def tier_occupancies(db) -> str:
    return "  ".join(
        f"{tier.name}={tier.cache.occupancy}"
        for tier in db.storage.backend.caching_tiers
    )


def main() -> None:
    config = tier3_config(
        cache_blocks=2048, hot_tier_blocks=512,
        bufferpool_pages=96, work_mem_rows=800,
    )
    db = build_database(config)
    meta = load_tpch(db, scale=0.3)
    print(f"Loaded TPC-H at scale {meta.scale}: {db.database_pages()} pages")
    describe_chain(db)

    for qid in (9, 18):
        result = db.run_query(build_query(db, qid), label=f"Q{qid}")
        print(
            f"\nQ{qid}: {result.row_count} rows in "
            f"{result.sim_seconds:.3f} simulated seconds"
        )
        print(f"  tier occupancy after the query: {tier_occupancies(db)}")
        total = result.stats.total
        print(
            f"  blocks={total.blocks}  cache hits={total.cache_hits} "
            f"({100 * total.hit_ratio:.1f}%)"
        )

    scheduler = db.storage.scheduler
    print(
        f"\nscheduler: {scheduler.requests_accepted} requests in "
        f"{scheduler.dispatches} dispatches "
        f"({scheduler.requests_merged} merged, "
        f"{scheduler.writeback_drains} elevator drains)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Three-tier HOT/WARM/COLD storage: DLM-style data placement.

Builds a ``TierChain`` of a priority-managed NVMe tier over a
priority-managed SSD tier over an HDD, runs a random-request query (Q9)
and a temp-heavy query (Q18), and shows where the hierarchy put the
blocks: band-0 traffic (temporary data, the hottest random priority)
lands in the NVMe tier, the remaining caching priorities in the SSD
tier, and clean NVMe evictions waterfall into the SSD tier instead of
being dropped.

The second act is a *workload-drift* demo (DESIGN.md §11): under the
``hybrid`` placement mode, a hot set of point reads rotates to a new
key region mid-run and the background migrator physically promotes the
newly hot blocks up the HOT/WARM/COLD hierarchy (and demotes cooled
ones) while the queries keep running.

Run:  python examples/three_tier_dlm.py
"""

from repro.harness.configs import build_database, tier3_config
from repro.harness.shift import run_placement_shift
from repro.storage.placement import PlacementConfig
from repro.tpch.queries import build_query
from repro.tpch.workload import load_tpch


def describe_chain(db) -> None:
    chain = db.storage.backend
    print(f"tier chain: {chain.describe()}")
    for tier in chain.caching_tiers:
        print(
            f"  {tier.name:5s} capacity={tier.cache.capacity:5d} blocks  "
            f"admit_level<={tier.admit_level}  "
            f"demote_clean={tier.demote_clean}"
        )


def tier_occupancies(db) -> str:
    return "  ".join(
        f"{tier.name}={tier.cache.occupancy}"
        for tier in db.storage.backend.caching_tiers
    )


def main() -> None:
    config = tier3_config(
        cache_blocks=2048, hot_tier_blocks=512,
        bufferpool_pages=96, work_mem_rows=800,
    )
    db = build_database(config)
    meta = load_tpch(db, scale=0.3)
    print(f"Loaded TPC-H at scale {meta.scale}: {db.database_pages()} pages")
    describe_chain(db)

    for qid in (9, 18):
        result = db.run_query(build_query(db, qid), label=f"Q{qid}")
        print(
            f"\nQ{qid}: {result.row_count} rows in "
            f"{result.sim_seconds:.3f} simulated seconds"
        )
        print(f"  tier occupancy after the query: {tier_occupancies(db)}")
        total = result.stats.total
        print(
            f"  blocks={total.blocks}  cache hits={total.cache_hits} "
            f"({100 * total.hit_ratio:.1f}%)"
        )

    scheduler = db.storage.scheduler
    print(
        f"\nscheduler: {scheduler.requests_accepted} requests in "
        f"{scheduler.dispatches} dispatches "
        f"({scheduler.requests_merged} merged, "
        f"{scheduler.writeback_drains} elevator drains)"
    )

    drift_demo()


def drift_demo() -> None:
    """Workload drift under hybrid placement: blocks physically move."""
    print("\n--- workload drift under hybrid placement (3-tier) ---")
    # Small tiers and an eager demotion policy, so the drift visibly
    # moves blocks in *both* directions: newly hot regions promoted up
    # the chain, cooled ones pushed back down.
    result = run_placement_shift(
        mode="hybrid",
        shifting=True,
        kind="tier3",
        scale=0.2,
        n_ops=200,
        bufferpool_pages=16,
        cache_blocks=128,
        spill_sort=False,
        placement_config=PlacementConfig(
            extent_blocks=16,
            epoch_seconds=0.08,
            promote_threshold=10,
            budget_blocks=128,
            demote_threshold=1,
            demote_occupancy=0.5,
        ),
    )
    mig = result.migration
    print(
        f"shifting hot set over orders: {result.n_ops} ops, "
        f"{result.sim_seconds:.3f} simulated seconds"
    )
    print(
        f"  migration: {mig['epochs']} epochs, "
        f"{mig['blocks_promoted']} blocks promoted, "
        f"{mig['blocks_demoted']} demoted, "
        f"{mig['blocks_declined']} declined by admission"
    )
    occupancy = "  ".join(
        f"{name}={blocks}" for name, blocks in result.tier_occupancy.items()
    )
    print(f"  tier occupancy after the drift: {occupancy}")
    print(
        f"  background migration I/O: {mig['migration_seconds']:.4f} s "
        "(off the query critical path)"
    )
    # The demo's whole point: drift made the migrator physically move
    # blocks between HOT/WARM/COLD while the foreground kept running.
    assert mig["blocks_promoted"] > 0, "drift should trigger promotions"
    assert mig["blocks_demoted"] > 0, "cooled regions should demote"


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Using the hybrid storage system directly, without the DBMS.

Demonstrates the Differentiated Storage Services idea on a synthetic
trace: a hot random working set is protected from a huge sequential flood
by request classification, while a plain LRU cache lets the flood evict
everything.  This is the paper's core mechanism in ~60 lines.

Run:  python examples/custom_policy_cache.py
"""

import random

from repro.sim.params import SimulationParameters
from repro.storage import (
    CachedBackend,
    Device,
    DeviceSpec,
    IOOp,
    IORequest,
    LRUCache,
    PolicySet,
    PriorityCache,
    QoSPolicy,
    RequestType,
    StorageSystem,
)

HOT_BLOCKS = 512          # randomly re-read working set
FLOOD_BLOCKS = 200_000    # one huge sequential scan
CACHE_BLOCKS = 1024


def build_system(kind: str) -> StorageSystem:
    params = SimulationParameters()
    ssd = Device(DeviceSpec.ssd_from_params(params))
    hdd = Device(DeviceSpec.hdd_from_params(params))
    pset = PolicySet()
    if kind == "priority":
        cache = PriorityCache(CACHE_BLOCKS, pset)
    else:
        cache = LRUCache(CACHE_BLOCKS)
    return StorageSystem(CachedBackend(cache, ssd, hdd, params))


def drive(system: StorageSystem) -> None:
    pset = PolicySet()
    hot_policy = QoSPolicy.with_priority(2)      # Rule 2: random requests
    seq_policy = pset.sequential_policy()        # Rule 1: non-caching
    rng = random.Random(42)

    def hot_read():
        lba = 1_000_000 + rng.randrange(HOT_BLOCKS)
        system.submit(IORequest(
            lba=lba, nblocks=1, op=IOOp.READ,
            policy=hot_policy, rtype=RequestType.RANDOM, query_id=1,
        ))

    # Warm the working set, then interleave hot reads with a megascan.
    for _ in range(4 * HOT_BLOCKS):
        hot_read()
    scanned = 0
    while scanned < FLOOD_BLOCKS:
        system.submit(IORequest(
            lba=scanned, nblocks=32, op=IOOp.READ,
            policy=seq_policy, rtype=RequestType.SEQUENTIAL, query_id=2,
        ))
        scanned += 32
        hot_read()


def main() -> None:
    for kind in ("priority", "lru"):
        system = build_system(kind)
        drive(system)
        hot = system.stats.query(1).type_counts(RequestType.RANDOM)
        print(
            f"{kind:8s}  hot-read hit ratio {hot.hit_ratio:6.1%}   "
            f"total time {system.now:7.2f} simulated s"
        )
    print("\nThe priority cache keeps the hot set resident through the "
          "flood;\nthe LRU cache lets 200k sequential blocks churn it away.")


if __name__ == "__main__":
    main()

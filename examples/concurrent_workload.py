#!/usr/bin/env python3
"""Concurrent queries and Rule 5: the global priority registry at work.

Co-runs a random-heavy query (Q9) with a temp-heavy one (Q18) and a
sequential scan query (Q1) on one hybrid storage system, then shows how
each fared compared to running alone — the essence of the paper's
Section 6.4 concurrency experiments.

Run:  python examples/concurrent_workload.py
"""

from repro.harness.configs import build_database, hstorage_config, lru_config
from repro.tpch.queries import query_builder, query_label
from repro.tpch.workload import load_tpch

SCALE = 0.3
QUERIES = (9, 18, 1)


def fresh(kind_config):
    db = build_database(kind_config)
    load_tpch(db, scale=SCALE)
    return db


def run_alone(kind_config) -> dict[str, float]:
    times = {}
    for qid in QUERIES:
        db = fresh(kind_config)
        res = db.run_query(query_builder(qid), label=query_label(qid))
        times[res.label] = res.sim_seconds
    return times


def run_together(kind_config) -> dict[str, float]:
    db = fresh(kind_config)
    results = db.run_concurrent(
        [(query_label(qid), query_builder(qid)) for qid in QUERIES],
        quantum=64,
    )
    return {r.label: r.sim_seconds for r in results}


def main() -> None:
    for name, config in (
        ("hStorage-DB", hstorage_config(cache_blocks=512, bufferpool_pages=160)),
        ("LRU", lru_config(cache_blocks=512, bufferpool_pages=160)),
    ):
        alone = run_alone(config)
        together = run_together(config)
        print(f"\n{name}  (simulated seconds)")
        print(f"  {'query':6s} {'alone':>8s} {'co-running':>11s} {'slowdown':>9s}")
        for label in alone:
            a, t = alone[label], together[label]
            print(f"  {label:6s} {a:8.3f} {t:11.3f} {t / a:8.2f}x")


if __name__ == "__main__":
    main()
